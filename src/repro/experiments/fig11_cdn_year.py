"""Figure 11: year-long CDN-scale carbon savings, latency increases, and load shift.

With a 20 ms round-trip latency limit, the paper reports 49.5% carbon savings
in the US and 67.8% in Europe, average round-trip latency increases of ~11 ms,
and a load-distribution CDF showing CarbonEdge executing far more of the
workload in low-intensity zones than the Latency-aware baseline.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments.common import EXPERIMENT_SEED
from repro.experiments.registry import ExperimentSpec, RunContext, SweepAxis, register
from repro.simulator.cdn import run_cdn_simulation
from repro.simulator.metrics import SimulationResult
from repro.simulator.scenario import CDNScenario


def run(seed: int = EXPERIMENT_SEED, latency_limit_ms: float = 20.0,
        n_epochs: int = 12, apps_per_site_per_epoch: float = 2.0,
        max_sites: int | None = None,
        continents: tuple[str, ...] = ("US", "EU"),
        epoch_shards: int = 1, hierarchy_regions: int = 1) -> dict[str, object]:
    """Year-long CDN simulation for both continents under the four policies.

    ``epoch_shards`` is an execution knob, not science: the sharded kernel is
    bit-identical to the serial one, so the artifact does not depend on it.
    ``hierarchy_regions`` is *recorded* science: above 1 every policy routes
    through the cluster-then-refine solver tier, which changes placements.
    """
    results: dict[str, SimulationResult] = {}
    for continent in continents:
        scenario = CDNScenario(
            continent=continent,
            latency_limit_ms=latency_limit_ms,
            n_epochs=n_epochs,
            apps_per_site_per_epoch=apps_per_site_per_epoch,
            max_sites=max_sites,
            epoch_shards=epoch_shards,
            hierarchy_regions=hierarchy_regions,
            seed=seed,
        )
        results[continent] = run_cdn_simulation(scenario)
    summary = {}
    for continent, result in results.items():
        summary[continent] = {
            "carbon_savings_pct": result.carbon_savings_pct("CarbonEdge"),
            "latency_increase_rtt_ms": result.mean_latency_increase_rtt_ms("CarbonEdge"),
            "load_intensity_p50_latency_aware": float(np.median(
                result.hosting_intensity_distribution("Latency-aware"))),
            "load_intensity_p50_carbon_edge": float(np.median(
                result.hosting_intensity_distribution("CarbonEdge"))),
            # Placed apps with no feasible server to measure a latency
            # increase against (excluded from the mean above, not folded in).
            "nearest_unreachable": float(
                result.total_nearest_unreachable("CarbonEdge")),
        }
    return {"results": results, "summary": summary}


def report(result: dict[str, object]) -> str:
    """Render the Figure 11 summary."""
    rows = [{"continent": c, **{k: round(v, 1) for k, v in s.items()}}
            for c, s in result["summary"].items()]
    return format_table(
        rows, title="Figure 11: year-long CDN savings "
                    "(paper: 49.5% US / 67.8% EU, latency increase < 11 ms RTT)")


def compute(spec: ExperimentSpec, ctx: RunContext) -> dict[str, object]:
    """Registry entry point: run this experiment with the resolved parameters."""
    return run(**ctx.params)


SPEC = register(ExperimentSpec(
    name="fig11",
    title="Year-long CDN-scale carbon savings, latency increase, and load shift",
    kind="figure",
    compute=compute,
    report=report,
    params=dict(seed=EXPERIMENT_SEED, latency_limit_ms=20.0, n_epochs=12,
                apps_per_site_per_epoch=2.0, max_sites=None,
                continents=("US", "EU"), epoch_shards=1, hierarchy_regions=1),
    # Smoke keeps one epoch on ten sites but enough arrivals (~60) to clear
    # the shard-size threshold, so the CI shard-determinism job (serial vs
    # --epoch-shards 2, diffed byte-for-byte) exercises the sharded kernel
    # rather than its serial fallback.
    smoke_params=dict(n_epochs=1, max_sites=10, continents=("EU",),
                      apps_per_site_per_epoch=6.0),
    sweep=(SweepAxis("continents"),),
    # The raw per-epoch SimulationResult objects carry solve-time noise; the
    # artifact is the per-continent summary the paper reports.
    drop_keys=("results",),
    schema=("summary",),
))


if __name__ == "__main__":
    print(report(run()))
