"""Rounding and repair heuristics for fractional LP solutions.

When the LP relaxation of the placement MILP comes back fractional (or when
the branch-and-bound node budget is exhausted), :func:`round_and_repair`
produces a feasible integral assignment: binary variables are rounded by a
priority order (largest fractional value first), each tentative rounding is
checked against the model's constraints, and infeasible roundings fall back to
0. The result is not guaranteed optimal, only feasible — callers report it
with :class:`~repro.solver.result.SolveStatus.FEASIBLE`.
"""

from __future__ import annotations

import numpy as np

from repro.solver.milp import MILPModel
from repro.solver.result import SolveResult, SolveStatus


def round_and_repair(model: MILPModel, fractional: dict[str, float],
                     groups: list[list[str]] | None = None) -> SolveResult:
    """Round a fractional solution to a feasible integral one.

    Parameters
    ----------
    model:
        The MILP model whose constraints must hold.
    fractional:
        Fractional variable values (e.g. from the LP relaxation).
    groups:
        Optional list of variable-name groups with an "exactly one of these"
        semantic (the placement's per-application assignment rows). Within a
        group the variable with the highest fractional value that keeps the
        model feasible is set to 1 and the rest to 0. Variables outside any
        group are rounded greedily.
    """
    values: dict[str, float] = {}
    binary_names = set(model.binary_names())

    # Continuous variables keep their fractional values.
    for name, val in fractional.items():
        if name not in binary_names:
            values[name] = float(val)

    grouped: set[str] = set()
    groups = groups or []
    for group in groups:
        grouped.update(group)

    # Ungrouped binaries: round to the nearest integer first, repair later.
    for name in binary_names - grouped:
        values[name] = float(round(fractional.get(name, 0.0)))

    # Grouped binaries: pick the best member per group.
    for group in groups:
        ranked = sorted(group, key=lambda n: -fractional.get(n, 0.0))
        for name in group:
            values[name] = 0.0
        chosen = None
        for candidate in ranked:
            values[candidate] = 1.0
            _activate_supports(model, values, candidate)
            if _group_feasible(model, values, candidate):
                chosen = candidate
                break
            values[candidate] = 0.0
        if chosen is None:
            # No member keeps the model feasible: leave the group unassigned;
            # the caller treats this as an infeasible rounding.
            return SolveResult(status=SolveStatus.INFEASIBLE)

    violations = model.constraint_violations(values)
    if violations:
        return SolveResult(status=SolveStatus.INFEASIBLE)
    return SolveResult(status=SolveStatus.FEASIBLE,
                       objective=model.objective_value(values), values=values)


def _activate_supports(model: MILPModel, values: dict[str, float], candidate: str) -> None:
    """Turn on any binary whose constraint links it as a prerequisite of ``candidate``.

    The placement model encodes ``x_ij <= y_j`` style coupling constraints; when
    rounding sets an ``x`` to 1 the corresponding ``y`` must also be 1 for the
    assignment to stand a chance of being feasible. We detect such constraints
    structurally: a <=0 row with +1 on the candidate and a single negative
    coefficient on another binary.
    """
    binary_names = set(model.binary_names())
    for con in model.constraints:
        if con.equality or con.rhs != 0.0:
            continue
        coeffs = con.coefficients
        if coeffs.get(candidate, 0.0) <= 0.0:
            continue
        negatives = [(n, c) for n, c in coeffs.items() if c < 0 and n in binary_names]
        if len(negatives) == 1:
            support, _ = negatives[0]
            lower = model.variables[support].lower
            values[support] = max(1.0, lower) if values.get(support, 0.0) < 1.0 else values[support]


def _group_feasible(model: MILPModel, values: dict[str, float], candidate: str) -> bool:
    """Check only the constraints that involve ``candidate`` (cheap local check)."""
    for con in model.constraints:
        if candidate not in con.coefficients:
            continue
        lhs = sum(c * values.get(v, 0.0) for v, c in con.coefficients.items())
        if con.equality:
            continue  # equality rows (assignment rows) are finalised at the end
        if lhs > con.rhs + 1e-6:
            return False
    return True


def fractional_binaries(result_values: dict[str, float], binary_names: list[str],
                        tol: float = 1e-6) -> list[str]:
    """Names of binary variables with fractional values, most fractional first."""
    out = [(abs(result_values.get(n, 0.0) - round(result_values.get(n, 0.0))), n)
           for n in binary_names]
    return [n for frac, n in sorted(out, reverse=True) if frac > tol]


def integrality_gap(values: dict[str, float], binary_names: list[str]) -> float:
    """Largest distance of any binary variable from an integer."""
    if not binary_names:
        return 0.0
    arr = np.array([values.get(n, 0.0) for n in binary_names])
    return float(np.abs(arr - np.round(arr)).max())
