"""LP relaxation solving via scipy's HiGHS backend."""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.solver.milp import MILPModel
from repro.solver.result import SolveResult, SolveStatus


def solve_lp_relaxation(model: MILPModel,
                        extra_bounds: dict[str, tuple[float, float]] | None = None) -> SolveResult:
    """Solve the LP relaxation of a MILP model.

    Binary variables are relaxed to their [lower, upper] box. ``extra_bounds``
    overrides bounds per variable name, which is how the branch-and-bound
    solver fixes variables along a branch.
    """
    dense = model.to_dense()
    names: list[str] = dense["names"]  # type: ignore[assignment]
    bounds = np.array(dense["bounds"], dtype=float)
    if extra_bounds:
        index = {n: i for i, n in enumerate(names)}
        for name, (lo, hi) in extra_bounds.items():
            if name not in index:
                raise KeyError(f"extra bound for unknown variable {name!r}")
            i = index[name]
            bounds[i, 0] = max(bounds[i, 0], lo)
            bounds[i, 1] = min(bounds[i, 1], hi)
            if bounds[i, 0] > bounds[i, 1] + 1e-12:
                return SolveResult(status=SolveStatus.INFEASIBLE)

    if len(names) == 0:
        return SolveResult(status=SolveStatus.OPTIMAL, objective=model.objective_constant,
                           values={}, gap=0.0)

    res = linprog(
        c=dense["c"],
        A_ub=dense["A_ub"],
        b_ub=dense["b_ub"],
        A_eq=dense["A_eq"],
        b_eq=dense["b_eq"],
        bounds=bounds,
        method="highs",
    )
    if res.status == 2:
        return SolveResult(status=SolveStatus.INFEASIBLE)
    if res.status == 3:
        return SolveResult(status=SolveStatus.UNBOUNDED)
    if not res.success:
        return SolveResult(status=SolveStatus.ERROR)

    values = {name: float(v) for name, v in zip(names, res.x)}
    objective = model.objective_constant + float(res.fun)
    return SolveResult(status=SolveStatus.OPTIMAL, objective=objective, values=values, gap=0.0)
