"""Cluster-then-refine hierarchical placement: the planetary-scale solver tier.

The flat compiled path materialises dense ``n_apps × n_servers`` tensors —
fine at the paper's 496-site footprint, tens of GiB at the ROADMAP's
planetary regime (10k sites × 10^5 apps). This tier keeps per-stage tensors at
``O(n_apps × n_regions + max_region²)`` instead:

1. **Region plan** (:func:`build_region_plan`): deterministic geographic
   clustering of the fleet's sites — seeded k-means on site coordinates with a
   fixed iteration count and tie-stable (lowest-index) assignment updates, or
   a grid-hash fallback when there are fewer distinct coordinates than
   requested regions. The plan carries region centroids and a deterministic
   neighbour order (ascending centroid distance, ties by region index).
2. **Coarse pass**: one ``n_apps × n_regions`` aggregate problem — per-region
   optimistic assignment costs (minimum over the region's feasible servers),
   optimistic demands (per-key minimum) and aggregate capacity (sum) — solved
   by the existing dense greedy kernel (:func:`repro.solver.compile.
   greedy_fill`) with a zero activation channel, so the cold batched schedule
   applies.
3. **Refine pass**: each region's restricted sub-problem (the apps the coarse
   pass routed there × the region's servers) is compiled through
   :meth:`ScenarioCompilation.region_slice` and solved through the backend
   registry (``refine_backend``), reusing warm starts and the intra-epoch
   shard machinery; regions are dispatched across the persistent pool
   (:func:`repro.solver.dispatch.run_tasks`) and merged by region index, so
   dispatch order never changes the answer.
4. **Spill**: apps a region's refinement could not fit (coarse aggregate
   capacity is optimistic) are re-routed in deterministic global order to
   neighbouring regions (centroid-distance order; coarse-unrouted apps try
   regions by ascending coarse cost), so served demand never silently drops.

The hierarchy deliberately changes placements versus the flat solve — the
coarse/refine objective gap is *recorded* on :class:`HierarchicalResult`,
never hidden — but within a fixed ``(plan, config)`` the artifacts are
byte-stable across worker counts, dispatch modes, and region dispatch order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import partial
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.objective import ObjectiveKind, apply_tie_break
from repro.network.geo import pairwise_distances_km
from repro.solver.compile import DenseCosts, GreedyState, ScenarioCompilation, greedy_fill
from repro.solver.config import DEFAULT_SOLVER_CONFIG, SolverConfig
from repro.solver.dispatch import run_tasks
from repro.solver.registry import solve as registry_solve
from repro.utils.rng import substream
from repro.utils.units import joules_to_kwh
from repro.workloads.generator import ApplicationBatch

if TYPE_CHECKING:  # typing only
    from repro.workloads.application import Application

#: Fixed k-means iteration count: enough to settle CDN-scale footprints, and a
#: constant so the plan is a pure function of (coords, n_regions, seed).
KMEANS_ITERATIONS: int = 8


@dataclass(frozen=True)
class RegionPlan:
    """Deterministic geographic partition of a fleet's sites into regions.

    Attributes
    ----------
    n_regions:
        Number of regions (clusters) in the plan.
    site_names:
        Site names, aligned with ``site_region``.
    site_region:
        (n_sites,) region index of each site.
    centroids:
        (R, 2) [lat, lon] centroid of each region.
    neighbor_order:
        (R, R) region indices sorted by ascending centroid distance from each
        region (self first; ties resolve to the lower region index). The
        spill pass walks rows of this table.
    method:
        ``"kmeans"`` or ``"grid"`` (the fallback for degenerate coordinates).
    seed:
        Seed of the k-means initialisation stream.
    """

    n_regions: int
    site_names: tuple
    site_region: np.ndarray
    centroids: np.ndarray
    neighbor_order: np.ndarray
    method: str
    seed: int

    def region_of(self, site: str) -> int:
        """Region index of a site name."""
        try:
            return int(self.site_region[self.site_names.index(site)])
        except ValueError:
            raise KeyError(f"unknown site {site!r}") from None

    def region_sizes(self) -> np.ndarray:
        """(R,) number of sites per region."""
        return np.bincount(self.site_region, minlength=self.n_regions)


def build_region_plan(site_names: Sequence[str], coords: np.ndarray,
                      n_regions: int, seed: int = 0) -> RegionPlan:
    """Cluster sites into ``n_regions`` geographic regions, deterministically.

    Seeded k-means over the site coordinates: the initial centroids are drawn
    (without replacement, from a named substream of ``seed``) from the
    *distinct* coordinate rows in their lexicographic order, the assignment
    step breaks distance ties to the lowest region index (``argmin``), the
    update step keeps an empty region's previous centroid, and the iteration
    count is fixed — so the plan is a pure function of its inputs. When there
    are fewer distinct coordinates than regions, k-means cannot seed and the
    grid-hash fallback partitions the bounding box into cells hashed onto the
    requested region count instead.
    """
    site_names = tuple(site_names)
    coords = np.atleast_2d(np.asarray(coords, dtype=float))
    n = len(site_names)
    if coords.shape != (n, 2):
        raise ValueError(f"coords must have shape ({n}, 2), got {coords.shape}")
    if n_regions < 1:
        raise ValueError(f"n_regions must be >= 1, got {n_regions}")
    n_regions = min(n_regions, n)
    distinct = np.unique(coords, axis=0)
    if len(distinct) >= n_regions:
        labels, centroids = _kmeans(coords, distinct, n_regions, seed)
        method = "kmeans"
    else:
        labels, centroids = _grid_hash(coords, n_regions)
        method = "grid"
    return RegionPlan(n_regions=n_regions, site_names=site_names,
                      site_region=labels, centroids=centroids,
                      neighbor_order=_neighbor_order(centroids),
                      method=method, seed=seed)


def _kmeans(coords: np.ndarray, distinct: np.ndarray, n_regions: int,
            seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Fixed-iteration, tie-stable k-means (see :func:`build_region_plan`)."""
    rng = substream(seed, "hierarchy-regions", n_regions)
    pick = np.sort(rng.choice(len(distinct), size=n_regions, replace=False))
    centroids = distinct[pick].copy()
    labels = np.zeros(len(coords), dtype=int)
    for _ in range(KMEANS_ITERATIONS):
        # argmin resolves equidistant sites to the lowest region index.
        labels = np.argmin(pairwise_distances_km(coords, centroids), axis=1)
        for r in range(n_regions):
            members = labels == r
            if members.any():
                centroids[r] = coords[members].mean(axis=0)
    labels = np.argmin(pairwise_distances_km(coords, centroids), axis=1)
    return labels.astype(int), centroids


def _grid_hash(coords: np.ndarray, n_regions: int) -> tuple[np.ndarray, np.ndarray]:
    """Bounding-box grid cells hashed onto ``n_regions`` (degenerate fallback)."""
    g = int(np.ceil(np.sqrt(n_regions)))
    lo = coords.min(axis=0)
    span = np.maximum(coords.max(axis=0) - lo, 1e-12)
    cell = np.clip(((coords - lo) / span * g).astype(int), 0, g - 1)
    labels = (cell[:, 0] * g + cell[:, 1]) % n_regions
    centroids = np.zeros((n_regions, 2))
    overall = coords.mean(axis=0)
    for r in range(n_regions):
        members = labels == r
        centroids[r] = coords[members].mean(axis=0) if members.any() else overall
    return labels.astype(int), centroids


def _neighbor_order(centroids: np.ndarray) -> np.ndarray:
    """(R, R) ascending-centroid-distance neighbour table (stable index ties)."""
    dist = pairwise_distances_km(centroids, centroids)
    return np.argsort(dist, axis=1, kind="stable").astype(int)


def region_server_columns(plan: RegionPlan,
                          servers: Sequence) -> list[np.ndarray]:
    """Global server-column arrays per region (fleet order within a region)."""
    region_of = {name: int(r) for name, r in zip(plan.site_names, plan.site_region)}
    cols: list[list[int]] = [[] for _ in range(plan.n_regions)]
    for j, srv in enumerate(servers):
        try:
            cols[region_of[srv.site]].append(j)
        except KeyError:
            raise KeyError(
                f"server {srv.server_id!r} at site {srv.site!r} is not covered "
                f"by the region plan") from None
    return [np.asarray(c, dtype=np.intp) for c in cols]


@dataclass
class HierarchicalResult:
    """Outcome of one hierarchical solve.

    ``coarse_objective`` and ``refined_objective`` are in the same raw
    objective units (grams for carbon, joules for energy, ms for latency,
    normalised blend units for multi), so their difference is the recorded
    coarse/refine gap: the coarse value is the optimistic aggregate bound,
    the refined value what the per-region solves actually achieved.
    """

    #: (A,) global server index per application, -1 when unplaced.
    assignment: np.ndarray
    #: Optimistic objective of the coarse apps×regions pass.
    coarse_objective: float
    #: Raw objective of the final (refined + spilled) placements.
    refined_objective: float
    #: Applications the coarse pass could not route to any region.
    n_coarse_unrouted: int
    #: Applications placed by the spill pass (refinement could not fit them).
    n_spilled: int
    #: Applications left unplaced after refinement and spill.
    n_unplaced: int
    #: Apps routed to each *effective* (server-bearing) region by the coarse pass.
    region_app_counts: tuple
    #: Servers per effective region.
    region_server_counts: tuple
    #: The plan the solve ran against.
    plan: RegionPlan

    @property
    def n_placed(self) -> int:
        return int((self.assignment >= 0).sum())

    @property
    def objective_gap(self) -> float:
        """Refined minus coarse objective (>= 0 when coarse was optimistic)."""
        return self.refined_objective - self.coarse_objective


def _region_reduce(row: np.ndarray, feas: np.ndarray, perm: np.ndarray,
                   starts: np.ndarray) -> np.ndarray:
    """Per-region minimum of ``row`` over feasible servers (+inf when none)."""
    return np.minimum.reduceat(np.where(feas, row, np.inf)[perm], starts)


def _refine_region(compilation: ScenarioCompilation, cols: np.ndarray,
                   apps: list, global_idx: np.ndarray, *, hour: int,
                   horizon_hours: float, use_forecast: bool,
                   objective: ObjectiveKind, alpha: float, manage_power: bool,
                   refine_backend: str, seed: int, config: SolverConfig,
                   warm_start: dict | None):
    """Solve one region's restricted sub-problem through the backend registry.

    Returns ``(global_idx, local_assignment, remaining_capacities)`` — the
    remaining per-server capacities feed the spill pass.
    """
    sub = compilation.region_slice(cols)
    problem = sub.build_problem(apps, hour=hour, horizon_hours=horizon_hours,
                                use_forecast=use_forecast)
    local_warm = None
    if warm_start:
        global_to_local = {int(c): l for l, c in enumerate(cols)}
        local_warm = {app.app_id: global_to_local[warm_start[app.app_id]]
                      for app in apps
                      if app.app_id in warm_start
                      and int(warm_start[app.app_id]) in global_to_local}
        local_warm = local_warm or None
    solution = registry_solve(problem, backend=refine_backend,
                              objective=objective, alpha=alpha,
                              manage_power=manage_power, seed=seed,
                              warm_start=local_warm, config=config)
    local = np.full(len(apps), -1, dtype=int)
    remaining = [cap for cap in problem.capacities]
    for app_id, j in solution.placements.items():
        i = problem.app_index(app_id)
        local[i] = int(j)
        remaining[j] = remaining[j] - problem.demands[i][j]
    return global_idx, local, remaining


def solve_hierarchical(
    compilation: ScenarioCompilation,
    applications: "Sequence[Application] | ApplicationBatch",
    plan: RegionPlan,
    *,
    hour: int = 0,
    horizon_hours: float = 1.0,
    use_forecast: bool = True,
    objective: ObjectiveKind = ObjectiveKind.CARBON,
    alpha: float = 0.0,
    manage_power: bool = True,
    config: SolverConfig = DEFAULT_SOLVER_CONFIG,
    seed: int = 0,
    warm_start: dict | None = None,
) -> HierarchicalResult:
    """Cluster-then-refine placement of one batch over a compiled scenario.

    The fleet never materialises an ``n_apps × n_servers`` tensor: the coarse
    pass works on per-class ``(S,)`` rows reduced to ``(R,)`` aggregates, and
    each refinement solves against a :meth:`ScenarioCompilation.region_slice`
    view bounded by its region. See the module docstring for the four stages
    and the determinism contract.
    """
    # Columnar batches stay columnar: the coarse pass below works entirely on
    # class rows and index arrays, so per-app Application objects are only
    # materialised (per region / per spilled app) where the refinement and
    # spill passes genuinely consume them.
    batch = applications if isinstance(applications, ApplicationBatch) else None
    if batch is None:
        applications = list(applications)
    n_apps = len(batch) if batch is not None else len(applications)
    if n_apps == 0:
        raise ValueError("cannot solve an empty application batch")
    servers = compilation.servers

    # -- epoch delta: class rows, epoch-mean intensities, capacities ------------
    delta = compilation.epoch_delta(batch if batch is not None else applications,
                                    hour, horizon_hours, use_forecast)
    intensity = delta.intensity
    class_idx = delta.class_indices
    uniq, inverse = np.unique(class_idx, return_inverse=True)

    # -- effective regions (server-bearing) -------------------------------------
    all_cols = region_server_columns(plan, servers)
    eff_regions = [r for r in range(plan.n_regions) if len(all_cols[r])]
    if not eff_regions:
        raise ValueError("region plan covers no servers")
    cols = [all_cols[r] for r in eff_regions]
    coarse_of_plan = {r: k for k, r in enumerate(eff_regions)}
    n_eff = len(cols)
    perm = np.concatenate(cols)
    starts = np.cumsum([0] + [len(c) for c in cols])[:-1]

    # -- per-class raw assignment rows (objective coefficients over servers) ----
    keys = compilation._epoch_keys([compilation._class_keys[k] for k in uniq])
    horizon = float(horizon_hours)
    act_carbon = compilation.base_power_w * horizon / 1000.0 * intensity
    act_energy = compilation.base_power_w * horizon * 3600.0

    def energy_row(k: int) -> np.ndarray:
        _, workload, rate, _ = compilation._class_keys[k]
        return compilation._energy_row(workload, rate, horizon)

    norm: dict[str, tuple[float, float]] = {}
    if objective is ObjectiveKind.MULTI:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        # Mirror the flat _minmax_normalize pools: feasible assignment entries
        # (class rows replicate per app, which leaves min/max unchanged) plus
        # every activation coefficient.
        pools = {"carbon": [act_carbon], "energy": [act_energy]}
        any_feas = False
        for k in uniq:
            feas = compilation._feas_rows[k]
            e_row = energy_row(k)
            c_row = joules_to_kwh(e_row) * intensity
            if feas.any():
                any_feas = True
                pools["carbon"].append(c_row[feas])
                pools["energy"].append(e_row[feas])
            else:
                pools["carbon"].append(c_row)
                pools["energy"].append(e_row)
        del any_feas
        for name, parts in pools.items():
            pool = np.concatenate([np.ravel(p) for p in parts])
            lo, hi = float(pool.min()), float(pool.max())
            norm[name] = (lo, hi - lo)

    def assign_row(k: int) -> np.ndarray:
        """Raw (S,) assignment coefficient row of one class for the objective."""
        if objective is ObjectiveKind.LATENCY:
            return compilation._lat_rows[k]
        if objective is ObjectiveKind.INTENSITY:
            return intensity
        e_row = energy_row(k)
        if objective is ObjectiveKind.ENERGY:
            return e_row
        c_row = joules_to_kwh(e_row) * intensity
        if objective is ObjectiveKind.CARBON:
            return c_row
        (c_lo, c_span), (e_lo, e_span) = norm["carbon"], norm["energy"]
        c_hat = (c_row - c_lo) / c_span if c_span > 0 else np.zeros_like(c_row)
        e_hat = (e_row - e_lo) / e_span if e_span > 0 else np.zeros_like(e_row)
        return alpha * e_hat + (1.0 - alpha) * c_hat

    def tie_row(k: int) -> np.ndarray:
        if objective is ObjectiveKind.LATENCY:
            return joules_to_kwh(energy_row(k)) * intensity
        return compilation._lat_rows[k]

    # -- coarse aggregate tensors, one class at a time (never (C, S) at once) ---
    n_classes = len(uniq)
    class_cost = np.empty((n_classes, n_eff))
    class_tie = np.empty((n_classes, n_eff))
    class_energy = np.empty((n_classes, n_eff))
    class_mask = np.empty((n_classes, n_eff), dtype=bool)
    class_demand = np.empty((n_classes, n_eff, len(keys)))
    for c, k in enumerate(uniq):
        feas = compilation._feas_rows[k]
        feas_any = np.bitwise_or.reduceat(feas[perm], starts)
        class_mask[c] = feas_any
        class_cost[c] = _region_reduce(assign_row(k), feas, perm, starts)
        class_tie[c] = np.where(feas_any, _region_reduce(tie_row(k), feas, perm, starts), 0.0)
        class_energy[c] = np.where(
            feas_any, _region_reduce(energy_row(k), feas, perm, starts), 0.0)
        _, workload, rate, _ = compilation._class_keys[k]
        dem = compilation._dense_row(workload, rate, keys)
        region_dem = np.minimum.reduceat(
            np.where(feas[:, None], dem, np.inf)[perm], starts, axis=0)
        class_demand[c] = np.where(feas_any[:, None], region_dem, 0.0)
    class_cost[~class_mask] = 0.0  # masked out below; keep the tensor finite

    if delta.baseline_capacity:
        cap_dense = compilation._capacity_dense(keys)
    else:
        cap_dense = compilation._capacity_dense(keys, list(delta.capacities))
    cap_region = np.add.reduceat(cap_dense[perm], starts, axis=0)

    # -- the coarse apps×regions greedy pass ------------------------------------
    raw_cost = class_cost[inverse]
    mask = class_mask[inverse]
    cost = np.where(mask, apply_tie_break(raw_cost, mask, class_tie[inverse]), np.inf)
    dense = DenseCosts(keys=list(keys), demand=class_demand[inverse],
                       capacity=cap_region, mask=mask, cost=cost,
                       raw_assign=raw_cost, activation=np.zeros(n_eff),
                       initially_on=np.ones(n_eff, dtype=bool))
    state = GreedyState(dense)
    greedy_fill(state, class_energy[inverse], reconcile_mode=config.reconcile_mode)
    routed = state.assignment
    placed_coarse = routed >= 0
    coarse_objective = float(raw_cost[np.flatnonzero(placed_coarse),
                                      routed[placed_coarse]].sum())
    n_coarse_unrouted = int((~placed_coarse).sum())

    # -- per-region refinement through the backend registry ---------------------
    region_config = replace(config, hierarchy_regions=1)
    tasks = []
    task_regions = []
    region_app_counts = [0] * n_eff
    for r in range(n_eff):
        idx_r = np.flatnonzero(routed == r)
        region_app_counts[r] = len(idx_r)
        if not len(idx_r):
            continue
        apps_r = batch.subset(idx_r) if batch is not None \
            else [applications[i] for i in idx_r]
        tasks.append(partial(
            _refine_region, compilation, cols[r], apps_r, idx_r,
            hour=hour, horizon_hours=horizon_hours, use_forecast=use_forecast,
            objective=objective, alpha=alpha, manage_power=manage_power,
            refine_backend=config.refine_backend, seed=seed,
            config=region_config, warm_start=warm_start))
        task_regions.append(r)
    assignment = np.full(n_apps, -1, dtype=int)
    remaining: dict[int, list] = {}
    # run_tasks preserves submission (region-index) order, so the merge below
    # is independent of how tasks interleave on the pool.
    for r, (global_idx, local, rem) in zip(task_regions, run_tasks(tasks, mode=config.dispatch)):
        placed = local >= 0
        assignment[global_idx[placed]] = cols[r][local[placed]]
        remaining[r] = rem

    # -- spill: deterministic re-routing of everything still unplaced -----------
    n_spilled = 0
    for i in np.flatnonzero(assignment < 0):
        app = batch.application(int(i)) if batch is not None else applications[i]
        home = int(routed[i]) if routed[i] >= 0 else None
        if home is not None:
            order = [coarse_of_plan[int(p)]
                     for p in plan.neighbor_order[eff_regions[home]]
                     if int(p) in coarse_of_plan and coarse_of_plan[int(p)] != home]
        else:
            finite = np.where(mask[i], raw_cost[i], np.inf)
            order = [int(r) for r in np.argsort(finite, kind="stable")
                     if np.isfinite(finite[r])]
        for r in order:
            if not mask[i, r]:
                continue
            if _spill_into(compilation, cols[r], app, intensity, horizon,
                           objective, remaining, r, assignment, i):
                n_spilled += 1
                break

    # -- raw objective of the final placements ----------------------------------
    refined_objective = 0.0
    placed_final = assignment >= 0
    for c, k in enumerate(uniq):
        members = np.flatnonzero((inverse == c) & placed_final)
        if len(members):
            refined_objective += float(assign_row(k)[assignment[members]].sum())

    return HierarchicalResult(
        assignment=assignment,
        coarse_objective=coarse_objective,
        refined_objective=refined_objective,
        n_coarse_unrouted=n_coarse_unrouted,
        n_spilled=n_spilled,
        n_unplaced=int((~placed_final).sum()),
        region_app_counts=tuple(region_app_counts),
        region_server_counts=tuple(len(c) for c in cols),
        plan=plan,
    )


def _spill_into(compilation: ScenarioCompilation, region_cols: np.ndarray,
                app, intensity: np.ndarray, horizon: float,
                objective: ObjectiveKind, remaining: dict,
                r: int, assignment: np.ndarray, i: int) -> bool:
    """Try to place one spilled app in one region; True when committed.

    Feasibility is the region slice's SLO + support row; capacity is checked
    against the region's live remaining capacities (seeded by the refinement
    results). The candidate server is the minimum raw-objective-coefficient
    feasible fit, ties to the lowest server index.
    """
    sub = compilation.region_slice(region_cols)
    k = sub._class_of(app)
    feas = sub._feas_rows[k]
    if not feas.any():
        return False
    rem = remaining.get(r)
    if rem is None:
        rem = list(sub._baseline())
        remaining[r] = rem
    block = sub._block(app.workload, app.request_rate_rps)
    fits = np.fromiter(
        (feas[j] and block.demand_row[j].fits_within(rem[j])
         for j in range(len(region_cols))), dtype=bool, count=len(region_cols))
    if not fits.any():
        return False
    row = _spill_cost_row(sub, app, intensity[region_cols], horizon, objective)
    cost = np.where(fits, row, np.inf)
    j = int(np.argmin(cost))
    if not np.isfinite(cost[j]):
        return False
    assignment[i] = int(region_cols[j])
    rem[j] = rem[j] - block.demand_row[j]
    return True


def _spill_cost_row(sub: ScenarioCompilation, app, intensity_r: np.ndarray,
                    horizon: float, objective: ObjectiveKind) -> np.ndarray:
    """Raw per-server objective row of one app over a region slice.

    The multi objective spills by its carbon component — spill is a capacity
    escape hatch, and re-deriving the global min-max normalisation per
    candidate region would couple regions for no placement benefit.
    """
    k = sub._class_of(app)
    if objective is ObjectiveKind.LATENCY:
        return sub._lat_rows[k]
    if objective is ObjectiveKind.INTENSITY:
        return intensity_r
    e_row = sub._energy_row(app.workload, app.request_rate_rps, horizon)
    if objective is ObjectiveKind.ENERGY:
        return e_row
    return joules_to_kwh(e_row) * intensity_r
