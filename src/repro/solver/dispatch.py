"""Persistent shared-memory dispatch pool for intra-epoch shard tasks.

The sharded greedy kernel (:func:`repro.solver.compile.greedy_fill_sharded`)
used to construct a fresh ``ThreadPoolExecutor`` for every epoch's task list.
At serving-loop cadence — one re-solve per arrival event — the pool churn
(thread spawn, handshake, teardown) is measurable against sub-millisecond
solve times, so this module keeps **one process-lifetime executor** that every
epoch reuses. Threads share the compiled epoch tensors by reference (the
"shared-memory" part — no pickling, no copies), and results are merged by
application index, so execution mode can never change a solution: the
bit-identity contract of the sharded kernel holds for every dispatch mode.

**Free-threaded awareness.** On a free-threaded build (PEP 703, python3.13t+)
the capability probe :func:`free_threading_enabled` reports that the GIL is
off and coupled component bins — per-application Python loops that serialise
under a GIL — genuinely overlap on the pool. On a regular GIL build the
``"auto"`` mode falls back to inline serial execution instead: dispatching
GIL-bound Python loops to threads buys no overlap and pays synchronisation
overhead, and the vectorised free-chunk tasks are individually too small to
win it back. ``"pool"`` forces the executor either way (CI byte-diffs a
pooled fig11 run against a serial one to pin the contract).

The mode is resolved per call: :data:`DISPATCH_ENV` overrides everything
(the CI determinism jobs set it), then the caller's
:attr:`repro.solver.config.SolverConfig.dispatch` knob, then the ``"auto"``
rule above.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Sequence

#: Environment override for the dispatch mode: ``serial`` executes shard
#: tasks inline, ``pool`` forces the persistent executor, ``auto`` (or unset)
#: applies the free-threading-aware default. Used by the CI byte-diff job
#: that pins pooled-vs-serial artifact identity.
DISPATCH_ENV: str = "CARBON_EDGE_DISPATCH"

#: Recognised dispatch modes (module-level so SolverConfig can validate
#: without importing the executor machinery).
DISPATCH_MODES: tuple[str, ...] = ("auto", "pool", "serial")

_POOL: ThreadPoolExecutor | None = None
_POOL_LOCK = threading.Lock()


def free_threading_enabled() -> bool:
    """Capability probe: is this interpreter actually running without a GIL?

    True only on a free-threaded CPython build (3.13t+) with the GIL disabled
    at runtime — ``sys._is_gil_enabled`` exists and reports False. Regular
    builds (no probe, or probe says the GIL is on) return False.
    """
    probe = getattr(sys, "_is_gil_enabled", None)
    if probe is None:
        return False
    try:
        return not probe()
    except Exception:  # pragma: no cover - defensive against probe changes
        return False


def _pool_width() -> int:
    """Worker width of the process-lifetime pool (all cores, min 2)."""
    return max(2, os.cpu_count() or 2)


def dispatch_pool() -> ThreadPoolExecutor:
    """The process-lifetime shard executor (created lazily, shut down at exit).

    One pool per process, reused across every epoch and every solve —
    replacing the per-call ``ThreadPoolExecutor`` the sharded kernel used to
    construct. :func:`shutdown_dispatch_pool` (also registered with
    ``atexit`` and called from ``repro.experiments.common.clear_caches``)
    drops it; the next call transparently builds a fresh one.
    """
    global _POOL
    pool = _POOL
    if pool is not None:
        return pool
    with _POOL_LOCK:
        if _POOL is None:
            _POOL = ThreadPoolExecutor(
                max_workers=_pool_width(),
                thread_name_prefix="carbon-edge-dispatch")
        return _POOL


def shutdown_dispatch_pool(wait: bool = True) -> None:
    """Shut the process-lifetime pool down (idempotent, safe mid-session).

    Called by ``atexit``, by ``repro.experiments.common.clear_caches`` (so
    long ``run --all`` sessions drop idle threads between experiments), and
    by tests that assert pool lifecycle behaviour. Any later dispatch simply
    re-creates the pool.
    """
    global _POOL
    with _POOL_LOCK:
        pool, _POOL = _POOL, None
    if pool is not None:
        pool.shutdown(wait=wait)


atexit.register(shutdown_dispatch_pool)


def resolve_dispatch_mode(mode: str = "auto") -> str:
    """Resolve a dispatch knob to ``"pool"`` or ``"serial"``.

    Precedence: the :data:`DISPATCH_ENV` environment override (when it names
    a concrete mode), then an explicit ``mode``, then the ``"auto"`` rule —
    pool only when :func:`free_threading_enabled` (coupled bins actually
    overlap), serial otherwise.
    """
    env = os.environ.get(DISPATCH_ENV, "").strip().lower()
    if env in ("pool", "serial"):
        return env
    if mode in ("pool", "serial"):
        return mode
    return "pool" if free_threading_enabled() else "serial"


def run_tasks(tasks: Sequence[Callable], mode: str = "auto") -> list:
    """Execute shard tasks, preserving submission order in the results.

    Single-task lists always run inline (nothing to overlap). Otherwise the
    resolved mode picks the persistent pool or the inline serial loop —
    bit-identical results either way, because the sharded kernel merges task
    results by application index and the tasks themselves only read shared
    tensors and write clones.
    """
    if len(tasks) == 1:
        return [tasks[0]()]
    if resolve_dispatch_mode(mode) == "serial":
        return [task() for task in tasks]
    return list(dispatch_pool().map(lambda task: task(), tasks))
