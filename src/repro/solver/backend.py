"""The solver-backend abstraction for the placement problem.

A *backend* solves one :class:`~repro.core.problem.PlacementProblem` under a
:class:`SolveRequest` (objective, time budget, warm start) and returns a
:class:`~repro.core.solution.PlacementSolution` — or ``None`` when it cannot
produce one, in which case the registry falls back to the heuristic backend.
Backends implement the :class:`PlacementSolver` protocol and register
themselves with :func:`repro.solver.registry.register_backend`; callers go
through :func:`repro.solver.registry.solve` and never instantiate backends
directly.

The shared numeric substrate (dense cost/demand tensors, the feasibility
report, per-objective coefficients) lives in the scenario compilation layer
(:mod:`repro.solver.compile`): a :class:`SolveRequest` is a thin view over
the problem's memoised :class:`~repro.solver.compile.EpochCompilation`, so
every backend — and every *policy* solving the same problem in the same
epoch — reads one set of precomputed tensors instead of rebuilding its own.
:class:`DenseCosts` and the assignment decoding helpers are re-exported here
for backward compatibility.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.filters import FeasibilityReport
from repro.core.objective import ObjectiveKind
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.solver.compile import (  # noqa: F401  (re-exported for compatibility)
    DenseCosts,
    EpochCompilation,
    assignment_to_solution,
    bool_all,
    compile_placement,
)
from repro.solver.config import DEFAULT_SOLVER_CONFIG, SolverConfig


@dataclass
class SolveRequest:
    """Everything a backend needs to solve one placement instance.

    Parameters
    ----------
    problem:
        The placement problem instance.
    objective:
        Which objective to minimise (carbon by default).
    alpha:
        Energy weight of the multi-objective variant (Equation 8).
    manage_power:
        Include the server-activation term and power decisions; when False
        every server is treated as already on (the power ablation).
    time_budget_s:
        Wall-clock budget. Backends must return their best answer so far when
        it expires; ``None`` means each backend's own default limit applies.
    warm_start:
        Optional previous placement (app id -> server index) used to seed the
        backends for incremental epoch re-solves. Malformed entries — ids of
        departed applications, server indices outside the fleet, values that
        are not integers — are dropped up front (serving-mode re-solves can
        produce them) and counted in :attr:`warm_hints_dropped`, so no
        backend ever sees a hint it could KeyError on. Entries that are
        well-formed but infeasible under the current epoch (mask/capacity)
        are left in: backends skip those individually.
    max_nodes:
        Node budget for the branch-and-bound backend (ignored by the others).
    seed:
        Seed for the randomised backends (randomized rounding).
    config:
        Execution configuration (:class:`~repro.solver.config.SolverConfig`):
        intra-epoch shard count and serial-fallback threshold for the dense
        greedy kernel. Carries a determinism contract — it changes how fast
        the answer is produced, never which answer comes back.
    """

    problem: PlacementProblem
    objective: ObjectiveKind = ObjectiveKind.CARBON
    alpha: float = 0.0
    manage_power: bool = True
    time_budget_s: float | None = None
    warm_start: dict[str, int] | None = None
    max_nodes: int | None = None
    seed: int = 0
    config: SolverConfig = DEFAULT_SOLVER_CONFIG
    started_at: float = field(default_factory=time.monotonic)
    #: Malformed warm-start entries dropped by the sanitization pass.
    warm_hints_dropped: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.time_budget_s is not None and self.time_budget_s < 0:
            raise ValueError(f"time_budget_s must be non-negative, got {self.time_budget_s}")
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ValueError(f"max_nodes must be positive, got {self.max_nodes}")
        self._sanitize_warm_start()

    def _sanitize_warm_start(self) -> None:
        """Drop warm-start hints no backend could honour, counting them.

        Epoch re-solves in serving mode can race departures and fleet edits:
        a hint may name an application no longer in the batch or a server
        index outside the rebuilt fleet. Filtering here (with a counter that
        the registry surfaces as ``PlacementSolution.warm_hints_dropped``)
        means every backend can index ``problem.app_index(app_id)`` on the
        remaining hints without defensive try/except of its own.
        """
        if not self.warm_start:
            return
        problem = self.problem
        clean: dict[str, int] = {}
        for app_id, j in self.warm_start.items():
            try:
                problem.app_index(app_id)
                j = int(j)
            except (KeyError, TypeError, ValueError):
                self.warm_hints_dropped += 1
                continue
            if not 0 <= j < problem.n_servers:
                self.warm_hints_dropped += 1
                continue
            clean[app_id] = j
        self.warm_start = clean

    @property
    def compilation(self) -> EpochCompilation:
        """The problem's memoised epoch compilation (shared by every backend)."""
        return compile_placement(self.problem)

    @property
    def report(self) -> FeasibilityReport:
        """Feasible-server report (computed once per problem, shared by all)."""
        return self.compilation.report

    def coefficients(self) -> tuple[np.ndarray, np.ndarray]:
        """Raw (assignment, activation) objective coefficients for this request.

        With ``manage_power=False`` the activation coefficients are zero — the
        objective ignores power state, matching the MILP builder's behaviour.
        """
        assign, activation = self.compilation.coefficients(self.objective, self.alpha)
        if not self.manage_power:
            activation = np.zeros_like(activation)
        return assign, activation

    def dense(self) -> DenseCosts:
        """Dense cost/demand tensors (built once per problem, shared by every
        backend and policy through the epoch compilation)."""
        return self.compilation.dense(self.objective, self.alpha, self.manage_power)

    def remaining_s(self, default: float | None = None) -> float | None:
        """Seconds left in the budget (``default`` when no budget was set)."""
        if self.time_budget_s is None:
            return default
        return max(0.0, self.time_budget_s - (time.monotonic() - self.started_at))

    def deadline(self, default_budget_s: float) -> float:
        """Absolute monotonic deadline, using ``default_budget_s`` when unbudgeted."""
        budget = self.time_budget_s if self.time_budget_s is not None else default_budget_s
        return self.started_at + budget

    def expired(self) -> bool:
        """Whether the explicit time budget (if any) has run out."""
        remaining = self.remaining_s()
        return remaining is not None and remaining <= 0.0


@runtime_checkable
class PlacementSolver(Protocol):
    """Protocol every solver backend implements."""

    #: Canonical backend name (the registry key).
    name: str

    def solve(self, request: SolveRequest) -> PlacementSolution | None:
        """Solve the request, or return ``None`` when no solution was found."""
        ...


def solution_from_assignment(request: SolveRequest,
                             assignment: np.ndarray) -> PlacementSolution:
    """Decode an (A,) assignment vector (server index or -1) into a solution."""
    return assignment_to_solution(request.problem, assignment, request.manage_power)


def raw_objective_value(request: SolveRequest, solution: PlacementSolution) -> float:
    """Objective value of a solution under the request's un-augmented coefficients.

    Used by the registry to compare candidate solutions from different
    backends on equal footing (total carbon for the carbon objective, joules
    for energy, the normalised blend for multi-objective).
    """
    assign, activation = request.coefficients()
    problem = request.problem
    total = 0.0
    for app_id, j in solution.placements.items():
        total += float(assign[problem.app_index(app_id), j])
    if request.manage_power:
        total += float(np.dot(solution.newly_activated(), activation))
    return total
