"""The solver-backend abstraction for the placement problem.

A *backend* solves one :class:`~repro.core.problem.PlacementProblem` under a
:class:`SolveRequest` (objective, time budget, warm start) and returns a
:class:`~repro.core.solution.PlacementSolution` — or ``None`` when it cannot
produce one, in which case the registry falls back to the heuristic backend.
Backends implement the :class:`PlacementSolver` protocol and register
themselves with :func:`repro.solver.registry.register_backend`; callers go
through :func:`repro.solver.registry.solve` and never instantiate backends
directly.

This module also provides the shared numeric substrate the vectorised
backends build on: :class:`DenseCosts` precomputes the per-pair cost matrix
(with the same deterministic latency tie-break the MILP builder applies),
dense per-resource demand/capacity arrays, and activation costs, so the
heuristic and rounding backends never touch per-pair Python objects in their
hot loops.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.filters import FeasibilityReport, filter_feasible_servers
from repro.core.objective import ObjectiveKind, objective_coefficients
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution


@dataclass
class SolveRequest:
    """Everything a backend needs to solve one placement instance.

    Parameters
    ----------
    problem:
        The placement problem instance.
    objective:
        Which objective to minimise (carbon by default).
    alpha:
        Energy weight of the multi-objective variant (Equation 8).
    manage_power:
        Include the server-activation term and power decisions; when False
        every server is treated as already on (the power ablation).
    time_budget_s:
        Wall-clock budget. Backends must return their best answer so far when
        it expires; ``None`` means each backend's own default limit applies.
    warm_start:
        Optional previous placement (app id -> server index) used to seed the
        heuristic backend for incremental epoch re-solves. Entries that are
        stale or infeasible are silently ignored.
    max_nodes:
        Node budget for the branch-and-bound backend (ignored by the others).
    seed:
        Seed for the randomised backends (randomized rounding).
    """

    problem: PlacementProblem
    objective: ObjectiveKind = ObjectiveKind.CARBON
    alpha: float = 0.0
    manage_power: bool = True
    time_budget_s: float | None = None
    warm_start: dict[str, int] | None = None
    max_nodes: int | None = None
    seed: int = 0
    started_at: float = field(default_factory=time.monotonic)
    _report: FeasibilityReport | None = field(default=None, repr=False)
    _coefficients: tuple[np.ndarray, np.ndarray] | None = field(default=None, repr=False)
    _dense: "DenseCosts | None" = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.time_budget_s is not None and self.time_budget_s < 0:
            raise ValueError(f"time_budget_s must be non-negative, got {self.time_budget_s}")
        if self.max_nodes is not None and self.max_nodes < 1:
            raise ValueError(f"max_nodes must be positive, got {self.max_nodes}")

    @property
    def report(self) -> FeasibilityReport:
        """Feasible-server report (computed once, shared by all backends)."""
        if self._report is None:
            self._report = filter_feasible_servers(self.problem)
        return self._report

    def coefficients(self) -> tuple[np.ndarray, np.ndarray]:
        """Raw (assignment, activation) objective coefficients for this request.

        With ``manage_power=False`` the activation coefficients are zero — the
        objective ignores power state, matching the MILP builder's behaviour.
        """
        if self._coefficients is None:
            assign, activation = objective_coefficients(self.problem, self.objective, self.alpha)
            if not self.manage_power:
                activation = np.zeros_like(activation)
            self._coefficients = (assign, activation)
        return self._coefficients

    def dense(self) -> "DenseCosts":
        """Dense cost/demand arrays (built once, shared by every backend).

        The build walks every candidate pair in Python, so sharing it between
        the requested backend and the heuristic baseline matters at scale.
        """
        if self._dense is None:
            self._dense = DenseCosts.build(self)
        return self._dense

    def remaining_s(self, default: float | None = None) -> float | None:
        """Seconds left in the budget (``default`` when no budget was set)."""
        if self.time_budget_s is None:
            return default
        return max(0.0, self.time_budget_s - (time.monotonic() - self.started_at))

    def deadline(self, default_budget_s: float) -> float:
        """Absolute monotonic deadline, using ``default_budget_s`` when unbudgeted."""
        budget = self.time_budget_s if self.time_budget_s is not None else default_budget_s
        return self.started_at + budget

    def expired(self) -> bool:
        """Whether the explicit time budget (if any) has run out."""
        remaining = self.remaining_s()
        return remaining is not None and remaining <= 0.0


@runtime_checkable
class PlacementSolver(Protocol):
    """Protocol every solver backend implements."""

    #: Canonical backend name (the registry key).
    name: str

    def solve(self, request: SolveRequest) -> PlacementSolution | None:
        """Solve the request, or return ``None`` when no solution was found."""
        ...


@dataclass
class DenseCosts:
    """Dense numpy view of a placement instance for the vectorised backends.

    Attributes
    ----------
    keys:
        Resource dimensions, the K axis of ``demand`` / ``capacity``.
    demand:
        (A, S, K) per-pair resource demands (zero outside the candidate mask).
    capacity:
        (S, K) available capacity per server.
    mask:
        (A, S) candidate mask from the feasibility report.
    cost:
        (A, S) assignment cost including the deterministic latency tie-break;
        ``+inf`` outside the mask.
    raw_assign:
        (A, S) un-augmented assignment coefficients (for reporting).
    activation:
        (S,) activation cost of switching a server on (zero when power is
        unmanaged).
    initially_on:
        (S,) bool, servers already on (all True when power is unmanaged).
    """

    keys: list[str]
    demand: np.ndarray
    capacity: np.ndarray
    mask: np.ndarray
    cost: np.ndarray
    raw_assign: np.ndarray
    activation: np.ndarray
    initially_on: np.ndarray

    @classmethod
    def build(cls, request: SolveRequest) -> "DenseCosts":
        """Precompute the dense arrays for one request."""
        problem = request.problem
        mask = request.report.mask
        assign, activation = request.coefficients()

        key_set: set[str] = set()
        for cap in problem.capacities:
            key_set.update(cap.keys())
        a, s = problem.n_applications, problem.n_servers
        for i in range(a):
            for j in np.flatnonzero(mask[i]):
                key_set.update(problem.demands[i][int(j)].keys())
        keys = sorted(key_set)
        k = len(keys)

        capacity = np.array([[cap.get(key) for key in keys] for cap in problem.capacities],
                            dtype=float).reshape(s, k)
        demand = np.zeros((a, s, k))
        for i in range(a):
            for j in np.flatnonzero(mask[i]):
                vec = problem.demands[i][int(j)]
                for ki, key in enumerate(keys):
                    demand[i, int(j), ki] = vec.get(key)

        cost = cls._tie_broken(problem, assign, mask)
        initially_on = (problem.current_power > 0.5) if request.manage_power \
            else np.ones(s, dtype=bool)
        return cls(keys=keys, demand=demand, capacity=capacity, mask=mask, cost=cost,
                   raw_assign=assign, activation=np.asarray(activation, dtype=float),
                   initially_on=initially_on)

    @staticmethod
    def _tie_broken(problem: PlacementProblem, assign: np.ndarray,
                    mask: np.ndarray) -> np.ndarray:
        """Assignment cost with the MILP builder's epsilon latency tie-break.

        Using the identical perturbation keeps every backend minimising the
        same augmented objective, so cross-backend comparisons are apples to
        apples and objective-equivalent placements break ties the same way.
        """
        feasible_vals = assign[mask] if mask.any() else assign
        scale = float(np.abs(feasible_vals).max()) if feasible_vals.size else 1.0
        latency_scale = float(problem.latency_ms[mask].max()) if mask.any() else 1.0
        cost = assign.astype(float, copy=True)
        if scale > 0 and latency_scale > 0:
            epsilon = 1e-5 * scale / latency_scale
            cost = cost + epsilon * np.where(mask, problem.latency_ms, 0.0)
        return np.where(mask, cost, np.inf)

    def fits(self, i: int, capacity_left: np.ndarray) -> np.ndarray:
        """(S,) bool: servers with room for application ``i`` given remaining capacity."""
        return bool_all(self.demand[i] <= capacity_left + 1e-9)


def bool_all(fits_per_key: np.ndarray) -> np.ndarray:
    """All-dimensions reduction that tolerates a zero-width resource axis."""
    if fits_per_key.shape[-1] == 0:
        return np.ones(fits_per_key.shape[:-1], dtype=bool)
    return np.all(fits_per_key, axis=-1)


def solution_from_assignment(request: SolveRequest,
                             assignment: np.ndarray) -> PlacementSolution:
    """Decode an (A,) assignment vector (server index or -1) into a solution."""
    problem = request.problem
    placements: dict[str, int] = {}
    unplaced: list[str] = []
    for i, app in enumerate(problem.applications):
        j = int(assignment[i])
        if j >= 0:
            placements[app.app_id] = j
        else:
            unplaced.append(app.app_id)
    if request.manage_power:
        power_on = problem.current_power.copy()
        for j in set(placements.values()):
            power_on[j] = 1.0
    else:
        power_on = np.ones(problem.n_servers)
    return PlacementSolution(problem=problem, placements=placements,
                             power_on=power_on, unplaced=unplaced)


def raw_objective_value(request: SolveRequest, solution: PlacementSolution) -> float:
    """Objective value of a solution under the request's un-augmented coefficients.

    Used by the registry to compare candidate solutions from different
    backends on equal footing (total carbon for the carbon objective, joules
    for energy, the normalised blend for multi-objective).
    """
    assign, activation = request.coefficients()
    problem = request.problem
    total = 0.0
    for app_id, j in solution.placements.items():
        total += float(assign[problem.app_index(app_id), j])
    if request.manage_power:
        total += float(np.dot(solution.newly_activated(), activation))
    return total
