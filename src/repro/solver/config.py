"""Dependency-free solver-layer constants.

These live in their own module (importing nothing from the rest of the
package) so that both the backend registry and the policy layer can read them
without creating an import cycle between :mod:`repro.solver` and
:mod:`repro.core`.
"""

#: "auto" switches from the exact to the heuristic backend above this number
#: of candidate (application, server) pairs.
AUTO_EXACT_PAIR_LIMIT: int = 4000

#: "auto" never picks the exact backend with less than this much budget (s).
AUTO_MIN_EXACT_BUDGET_S: float = 1.0
