"""Dependency-free solver-layer constants and configuration.

These live in their own module (importing nothing from the rest of the
package) so that both the backend registry and the policy layer can read them
without creating an import cycle between :mod:`repro.solver` and
:mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: "auto" switches from the exact to the heuristic backend above this number
#: of candidate (application, server) pairs.
AUTO_EXACT_PAIR_LIMIT: int = 4000

#: "auto" never picks the exact backend with less than this much budget (s).
AUTO_MIN_EXACT_BUDGET_S: float = 1.0

#: Epochs with fewer pending applications than this solve serially even when
#: sharding is requested — below it the shard planner and pool dispatch cost
#: more than the per-application loop they replace.
MIN_SHARD_APPS: int = 32


@dataclass(frozen=True)
class SolverConfig:
    """Execution configuration of one solve, orthogonal to *what* is solved.

    Everything here carries a determinism contract: changing it may change how
    fast an answer is produced, never which answer. The objective, budgets,
    and warm starts — the knobs that select *which* solution comes back —
    live on :class:`~repro.solver.backend.SolveRequest` instead.

    Parameters
    ----------
    epoch_shards:
        Number of intra-epoch shards for the dense greedy kernel
        (:func:`repro.solver.compile.greedy_fill_sharded`). ``1`` keeps the
        serial kernel; higher values partition the compiled epoch tensors
        along the application axis and solve independent shards on a worker
        pool. Solutions are bit-identical for every value.
    min_shard_apps:
        Serial-fallback threshold: epochs with fewer pending applications are
        solved serially regardless of ``epoch_shards``.
    """

    epoch_shards: int = 1
    min_shard_apps: int = MIN_SHARD_APPS

    def __post_init__(self) -> None:
        if self.epoch_shards < 1:
            raise ValueError(f"epoch_shards must be >= 1, got {self.epoch_shards}")
        if self.min_shard_apps < 1:
            raise ValueError(f"min_shard_apps must be >= 1, got {self.min_shard_apps}")


#: Shared default configuration (serial kernel).
DEFAULT_SOLVER_CONFIG = SolverConfig()
