"""Dependency-free solver-layer constants and configuration.

These live in their own module (importing nothing from the rest of the
package) so that both the backend registry and the policy layer can read them
without creating an import cycle between :mod:`repro.solver` and
:mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: "auto" switches from the exact to the heuristic backend above this number
#: of candidate (application, server) pairs.
AUTO_EXACT_PAIR_LIMIT: int = 4000

#: "auto" never picks the exact backend with less than this much budget (s).
AUTO_MIN_EXACT_BUDGET_S: float = 1.0

#: Epochs with fewer pending applications than this solve serially even when
#: sharding is requested — below it the shard planner and pool dispatch cost
#: more than the per-application loop they replace.
MIN_SHARD_APPS: int = 32

#: Recognised reconciliation-replay modes: ``auto`` follows the wave-replay
#: kill-switch (wave unless disabled), ``wave`` forces the wave-vectorised
#: replay, ``serial`` forces the per-application replay loop. All three are
#: bit-identical; the knob only selects execution.
RECONCILE_MODES: tuple[str, ...] = ("auto", "wave", "serial")

#: Recognised shard-dispatch modes: ``auto`` uses the persistent pool only on
#: free-threaded interpreters (see :mod:`repro.solver.dispatch`), ``pool``
#: forces the process-lifetime executor, ``serial`` runs shard tasks inline.
DISPATCH_MODES: tuple[str, ...] = ("auto", "pool", "serial")


@dataclass(frozen=True)
class SolverConfig:
    """Execution configuration of one solve, orthogonal to *what* is solved.

    Everything here carries a determinism contract: changing it may change how
    fast an answer is produced, never which answer. The objective, budgets,
    and warm starts — the knobs that select *which* solution comes back —
    live on :class:`~repro.solver.backend.SolveRequest` instead.

    Two documented carve-outs. First, ``num_search_workers``: for the anytime
    exact backends (``cpsat``/``milp``) a wider portfolio search explores the
    tree in a different order, so under a *finite* time budget the incumbent
    held at the deadline may differ between worker counts (a run to proven
    optimality returns the same objective regardless). The recorded
    ``solver_params`` on the solution always state the worker count used, so
    artifacts remain attributable. The heuristic-family backends ignore the
    knob entirely.

    Second, the *hierarchy* knobs (``hierarchy_regions``,
    ``refine_backend``) select a different solver tier — the cluster-then-
    refine hierarchy of :mod:`repro.solver.hierarchy` — which deliberately
    trades optimality for memory/scale and therefore *does* change the answer
    versus the flat solve. Within a fixed hierarchy configuration the usual
    contract holds: worker counts, dispatch modes, and region dispatch order
    never change the answer, and the coarse/refine objective gap versus flat
    is recorded, never hidden. Backends themselves never see these knobs: the
    hierarchy tier consumes them above the backend layer and hands each
    region's restricted sub-problem to the registry with
    ``hierarchy_regions=1``.

    Parameters
    ----------
    epoch_shards:
        Number of intra-epoch shards for the dense greedy kernel
        (:func:`repro.solver.compile.greedy_fill_sharded`). ``1`` keeps the
        serial kernel; higher values partition the compiled epoch tensors
        along the application axis and solve independent shards on a worker
        pool. Solutions are bit-identical for every value.
    min_shard_apps:
        Serial-fallback threshold: epochs with fewer pending applications are
        solved serially regardless of ``epoch_shards``.
    reconcile_mode:
        How speculative winners and shard placements are replayed into the
        shared state: ``"wave"`` commits provably-settled waves with dense
        batched ops and drops to the exact per-application step only for the
        conflicting tail, ``"serial"`` keeps the per-application replay loop,
        ``"auto"`` follows the ``CARBON_EDGE_DISABLE_WAVE_REPLAY``
        kill-switch (wave unless disabled). Bit-identical for every mode.
    dispatch:
        Shard-task execution: ``"pool"`` uses the persistent process-lifetime
        executor (:mod:`repro.solver.dispatch`), ``"serial"`` runs tasks
        inline, ``"auto"`` pools only on free-threaded interpreters where
        coupled component bins genuinely overlap. Bit-identical for every
        mode.
    hierarchy_regions:
        Number of geographic regions for the cluster-then-refine hierarchy
        (:mod:`repro.solver.hierarchy`). ``1`` keeps the flat solve; higher
        values cluster the fleet into that many regions, run a coarse
        apps×regions pass, and refine each region independently. See the
        carve-out above: this knob changes *which* answer comes back.
    refine_backend:
        Registry backend name used for each region's refinement sub-solve
        when ``hierarchy_regions > 1`` (e.g. ``"greedy"``, ``"auto"``).
    num_search_workers:
        Parallel search workers for the anytime exact backends (CP-SAT's
        portfolio search; the MILP wrapper's thread count where supported).
        ``1`` keeps the single-worker search. See the carve-out above:
        under a finite time budget this knob may change which incumbent is
        returned.
    """

    epoch_shards: int = 1
    min_shard_apps: int = MIN_SHARD_APPS
    reconcile_mode: str = "auto"
    dispatch: str = "auto"
    hierarchy_regions: int = 1
    refine_backend: str = "greedy"
    num_search_workers: int = 1

    def __post_init__(self) -> None:
        if self.epoch_shards < 1:
            raise ValueError(f"epoch_shards must be >= 1, got {self.epoch_shards}")
        if self.num_search_workers < 1:
            raise ValueError(
                f"num_search_workers must be >= 1, got {self.num_search_workers}")
        if self.min_shard_apps < 1:
            raise ValueError(f"min_shard_apps must be >= 1, got {self.min_shard_apps}")
        if self.reconcile_mode not in RECONCILE_MODES:
            raise ValueError(
                f"reconcile_mode must be one of {RECONCILE_MODES}, "
                f"got {self.reconcile_mode!r}")
        if self.dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"dispatch must be one of {DISPATCH_MODES}, got {self.dispatch!r}")
        if self.hierarchy_regions < 1:
            raise ValueError(
                f"hierarchy_regions must be >= 1, got {self.hierarchy_regions}")
        if not self.refine_backend or not isinstance(self.refine_backend, str):
            raise ValueError(
                f"refine_backend must be a non-empty backend name, "
                f"got {self.refine_backend!r}")


#: Shared default configuration (serial kernel).
DEFAULT_SOLVER_CONFIG = SolverConfig()
