"""A small MILP model builder.

:class:`MILPModel` holds named variables (continuous or binary), linear
``<=`` / ``==`` constraints expressed as sparse coefficient dictionaries, and a
linear minimisation objective. It can export itself to the dense matrix form
``scipy.optimize.linprog`` expects, which is how the LP relaxation and the
branch-and-bound solver consume it.

The model is deliberately minimal: it supports exactly what the CarbonEdge
placement formulation (Equations 1–7 and the multi-objective Equation 8)
needs, with validation so malformed models fail loudly at build time rather
than producing silently-wrong placements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np


class VariableKind(Enum):
    """Kind of a decision variable."""

    CONTINUOUS = "continuous"
    BINARY = "binary"


@dataclass(frozen=True)
class Variable:
    """A decision variable with bounds."""

    name: str
    kind: VariableKind = VariableKind.CONTINUOUS
    lower: float = 0.0
    upper: float = 1.0

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ValueError(f"variable {self.name}: lower bound {self.lower} > upper {self.upper}")
        if self.kind is VariableKind.BINARY and not (0.0 <= self.lower and self.upper <= 1.0):
            raise ValueError(f"binary variable {self.name} must have bounds within [0, 1]")


@dataclass(frozen=True)
class LinearConstraint:
    """A linear constraint ``sum(coeff * var) (<=|==) rhs``."""

    name: str
    coefficients: dict[str, float]
    rhs: float
    equality: bool = False

    def __post_init__(self) -> None:
        if not self.coefficients:
            raise ValueError(f"constraint {self.name}: must reference at least one variable")


@dataclass
class MILPModel:
    """A linear minimisation model over named variables."""

    name: str = "model"
    variables: dict[str, Variable] = field(default_factory=dict)
    constraints: list[LinearConstraint] = field(default_factory=list)
    objective: dict[str, float] = field(default_factory=dict)
    objective_constant: float = 0.0

    # -- construction ---------------------------------------------------------

    def add_variable(self, name: str, kind: VariableKind = VariableKind.CONTINUOUS,
                     lower: float = 0.0, upper: float = 1.0) -> Variable:
        """Add a variable; raises on duplicate names."""
        if name in self.variables:
            raise ValueError(f"duplicate variable {name!r}")
        var = Variable(name=name, kind=kind, lower=lower, upper=upper)
        self.variables[name] = var
        return var

    def add_binary(self, name: str, lower: float = 0.0, upper: float = 1.0) -> Variable:
        """Add a binary variable (bounds may pin it to 0 or 1)."""
        return self.add_variable(name, kind=VariableKind.BINARY, lower=lower, upper=upper)

    def add_constraint(self, name: str, coefficients: dict[str, float], rhs: float,
                       equality: bool = False) -> LinearConstraint:
        """Add a ``<=`` (default) or ``==`` constraint over existing variables."""
        unknown = [v for v in coefficients if v not in self.variables]
        if unknown:
            raise KeyError(f"constraint {name!r} references unknown variables {unknown}")
        constraint = LinearConstraint(name=name, coefficients=dict(coefficients),
                                      rhs=float(rhs), equality=equality)
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, coefficients: dict[str, float], constant: float = 0.0) -> None:
        """Set the linear minimisation objective."""
        unknown = [v for v in coefficients if v not in self.variables]
        if unknown:
            raise KeyError(f"objective references unknown variables {unknown}")
        self.objective = dict(coefficients)
        self.objective_constant = float(constant)

    def add_objective_term(self, name: str, coefficient: float) -> None:
        """Accumulate a coefficient onto one variable's objective term."""
        if name not in self.variables:
            raise KeyError(f"objective term references unknown variable {name!r}")
        self.objective[name] = self.objective.get(name, 0.0) + float(coefficient)

    # -- introspection ---------------------------------------------------------

    @property
    def n_variables(self) -> int:
        """Number of decision variables."""
        return len(self.variables)

    @property
    def n_constraints(self) -> int:
        """Number of constraints."""
        return len(self.constraints)

    def variable_names(self) -> list[str]:
        """Variable names in insertion order (the dense column order)."""
        return list(self.variables)

    def binary_names(self) -> list[str]:
        """Names of binary variables in insertion order."""
        return [n for n, v in self.variables.items() if v.kind is VariableKind.BINARY]

    # -- dense export -----------------------------------------------------------

    def to_dense(self) -> dict[str, np.ndarray | list[str]]:
        """Export to the arrays ``scipy.optimize.linprog`` expects.

        Returns a dict with keys ``c`` (objective), ``A_ub``/``b_ub``,
        ``A_eq``/``b_eq`` (either may be None), ``bounds`` (N×2), and
        ``names`` (column order).
        """
        names = self.variable_names()
        index = {n: i for i, n in enumerate(names)}
        n = len(names)

        c = np.zeros(n)
        for var, coeff in self.objective.items():
            c[index[var]] = coeff

        bounds = np.zeros((n, 2))
        for i, name in enumerate(names):
            var = self.variables[name]
            bounds[i] = (var.lower, var.upper)

        ub_rows, ub_rhs, eq_rows, eq_rhs = [], [], [], []
        for con in self.constraints:
            row = np.zeros(n)
            for var, coeff in con.coefficients.items():
                row[index[var]] = coeff
            if con.equality:
                eq_rows.append(row)
                eq_rhs.append(con.rhs)
            else:
                ub_rows.append(row)
                ub_rhs.append(con.rhs)

        return {
            "c": c,
            "A_ub": np.vstack(ub_rows) if ub_rows else None,
            "b_ub": np.asarray(ub_rhs) if ub_rhs else None,
            "A_eq": np.vstack(eq_rows) if eq_rows else None,
            "b_eq": np.asarray(eq_rhs) if eq_rhs else None,
            "bounds": bounds,
            "names": names,
        }

    # -- evaluation --------------------------------------------------------------

    def objective_value(self, values: dict[str, float]) -> float:
        """Objective value of an assignment (missing variables count as 0)."""
        return self.objective_constant + sum(
            coeff * values.get(var, 0.0) for var, coeff in self.objective.items())

    def constraint_violations(self, values: dict[str, float], tol: float = 1e-6) -> list[str]:
        """Names of constraints violated by an assignment (empty when feasible)."""
        violated: list[str] = []
        for con in self.constraints:
            lhs = sum(coeff * values.get(var, 0.0) for var, coeff in con.coefficients.items())
            if con.equality:
                if abs(lhs - con.rhs) > tol:
                    violated.append(con.name)
            elif lhs > con.rhs + tol:
                violated.append(con.name)
        # bound violations reported with a pseudo-name
        for name, var in self.variables.items():
            v = values.get(name, 0.0)
            if v < var.lower - tol or v > var.upper + tol:
                violated.append(f"bound:{name}")
        return violated

    def is_feasible(self, values: dict[str, float], tol: float = 1e-6) -> bool:
        """Whether an assignment satisfies every constraint and bound."""
        return not self.constraint_violations(values, tol=tol)
