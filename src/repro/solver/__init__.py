"""Solver layer: the MILP substrate and the pluggable backend registry.

The paper solves its placement optimisation (Equation 7) with Google OR-Tools.
OR-Tools is not available offline, so this package provides an in-house solver
layer in two tiers:

**The MILP substrate** (generic — knows nothing about carbon or placement):

* :mod:`repro.solver.milp` — a small MILP model builder (variables, linear
  constraints, linear objective) with validation helpers.
* :mod:`repro.solver.lp_relaxation` — LP relaxation solving via
  ``scipy.optimize.linprog`` (HiGHS backend).
* :mod:`repro.solver.branch_and_bound` — best-first branch & bound over the
  binary variables, warm-started by rounding.
* :mod:`repro.solver.rounding` — LP-rounding and repair heuristics.
* :mod:`repro.solver.result` — solution/status containers.

**The placement-backend layer** (the production front door):

* :mod:`repro.solver.compile` — the two-tier scenario compilation layer:
  :class:`ScenarioCompilation` hoists everything epoch-invariant (latency
  geometry, device-class blocks, feasibility rows, capacity tensors) to
  scenario scope, and :class:`EpochCompilation` precomputes the feasibility
  report, per-objective coefficient matrices, dense cost/demand tensors, and
  nearest-feasible latencies once per problem, shared by every policy and
  backend; it also hosts the single dense greedy kernel.
* :mod:`repro.solver.backend` — the :class:`PlacementSolver` protocol and
  :class:`SolveRequest` (a thin view over the compilation).
* :mod:`repro.solver.registry` — backend registration and
  :func:`solve(problem, backend="auto", time_budget_s=...) <repro.solver.registry.solve>`.
* :mod:`repro.solver.backends` — the built-in backends: ``bnb`` (exact branch
  and bound), ``heuristic`` (vectorised greedy + local search), and
  ``lp-round`` (LP relaxation + randomized rounding).

The registry symbols are exported lazily so that importing
``repro.solver.milp`` from :mod:`repro.core` never triggers the backends'
(circular) import of the placement problem types.
"""

from repro.solver.config import SolverConfig
from repro.solver.milp import MILPModel, Variable, LinearConstraint, VariableKind
from repro.solver.result import SolveResult, SolveStatus
from repro.solver.lp_relaxation import solve_lp_relaxation
from repro.solver.branch_and_bound import BranchAndBoundSolver
from repro.solver.rounding import round_and_repair

__all__ = [
    "MILPModel",
    "Variable",
    "LinearConstraint",
    "VariableKind",
    "SolveResult",
    "SolveStatus",
    "SolverConfig",
    "solve_lp_relaxation",
    "BranchAndBoundSolver",
    "round_and_repair",
    # lazily exported backend-registry API
    "solve",
    "get_backend",
    "register_backend",
    "available_backends",
    "backend_names",
    "PlacementSolver",
    "SolveRequest",
    "EpochCompilation",
    "DenseCosts",
    "ShardPlan",
    "compile_placement",
    "clear_compilation",
    "greedy_fill_sharded",
    "plan_shards",
    "ScenarioCompilation",
    "EpochDelta",
    "compile_scenario",
    "clear_scenario_compilations",
    "scenario_tier_enabled",
]

_LAZY_REGISTRY_EXPORTS = {
    "solve", "get_backend", "register_backend", "available_backends", "backend_names",
}
_LAZY_BACKEND_EXPORTS = {"PlacementSolver", "SolveRequest"}
_LAZY_COMPILE_EXPORTS = {
    "EpochCompilation", "DenseCosts", "ShardPlan", "compile_placement",
    "clear_compilation", "greedy_fill_sharded", "plan_shards",
    "ScenarioCompilation", "EpochDelta", "compile_scenario",
    "clear_scenario_compilations", "scenario_tier_enabled",
}


def __getattr__(name: str):
    if name in _LAZY_REGISTRY_EXPORTS:
        from repro.solver import registry
        return getattr(registry, name)
    if name in _LAZY_BACKEND_EXPORTS:
        from repro.solver import backend
        return getattr(backend, name)
    if name in _LAZY_COMPILE_EXPORTS:
        from repro.solver import compile as compile_module
        return getattr(compile_module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
