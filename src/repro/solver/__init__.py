"""Mixed-integer linear programming substrate (the OR-Tools stand-in).

The paper solves its placement optimisation (Equation 7) with Google OR-Tools.
OR-Tools is not available offline, so this package provides an in-house MILP
layer with the pieces the placement policies need:

* :mod:`repro.solver.milp` — a small MILP model builder (variables, linear
  constraints, linear objective) with validation helpers.
* :mod:`repro.solver.lp_relaxation` — LP relaxation solving via
  ``scipy.optimize.linprog`` (HiGHS backend).
* :mod:`repro.solver.branch_and_bound` — best-first branch & bound over the
  binary variables, warm-started by rounding.
* :mod:`repro.solver.rounding` — LP-rounding and repair heuristics.
* :mod:`repro.solver.result` — solution/status containers.

The layer is generic (it knows nothing about carbon or placement); the
placement-specific model construction lives in :mod:`repro.core`.
"""

from repro.solver.milp import MILPModel, Variable, LinearConstraint, VariableKind
from repro.solver.result import SolveResult, SolveStatus
from repro.solver.lp_relaxation import solve_lp_relaxation
from repro.solver.branch_and_bound import BranchAndBoundSolver
from repro.solver.rounding import round_and_repair

__all__ = [
    "MILPModel",
    "Variable",
    "LinearConstraint",
    "VariableKind",
    "SolveResult",
    "SolveStatus",
    "solve_lp_relaxation",
    "BranchAndBoundSolver",
    "round_and_repair",
]
