"""Solver result containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np


class SolveStatus(Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"          # a feasible (possibly sub-optimal) incumbent
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ERROR = "error"

    @property
    def has_solution(self) -> bool:
        """Whether a usable variable assignment is available."""
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class SolveResult:
    """Result of solving a MILP (or its LP relaxation).

    Parameters
    ----------
    status:
        Solve outcome.
    objective:
        Objective value of the returned assignment (NaN when no solution).
    values:
        Mapping of variable name to value (empty when no solution).
    gap:
        Relative optimality gap of the incumbent (0 for proven optimal,
        NaN when unknown).
    bound:
        Best proven lower bound on the objective (equals ``objective`` for a
        proven-optimal solve, NaN when the solver proves none) — the anytime
        tier's certificate, surfaced as ``PlacementSolution.solver_bound``.
    nodes_explored:
        Number of branch-and-bound nodes explored (0 for pure LP solves).
    """

    status: SolveStatus
    objective: float = float("nan")
    values: dict[str, float] = field(default_factory=dict)
    gap: float = float("nan")
    bound: float = float("nan")
    nodes_explored: int = 0

    @property
    def has_solution(self) -> bool:
        """Whether the result carries a usable assignment."""
        return self.status.has_solution and bool(self.values)

    def value(self, name: str, default: float = 0.0) -> float:
        """Value of a variable by name (``default`` when absent)."""
        return self.values.get(name, default)

    def binary_value(self, name: str, threshold: float = 0.5) -> bool:
        """Value of a binary variable as a bool."""
        return self.value(name) > threshold

    def is_integral(self, names: list[str], tol: float = 1e-6) -> bool:
        """Whether all named variables take integral values within ``tol``."""
        vals = np.array([self.value(n) for n in names], dtype=float)
        return bool(np.all(np.abs(vals - np.round(vals)) <= tol))
