"""The solver-backend registry and its front-door :func:`solve`.

One problem description, interchangeable backends::

    from repro.solver import solve

    solution = solve(problem)                               # auto-select
    solution = solve(problem, backend="heuristic",          # fast path
                     time_budget_s=0.05)
    solution = solve(problem, backend="exact",              # exact, warm data
                     warm_start=previous.placements)

Backends register themselves with :func:`register_backend` (the built-ins do
so when :mod:`repro.solver.backends` is imported, which happens lazily on
first use); external packages can call it at import time and become
addressable by name with no further wiring. The anytime exact tier —
``cpsat`` (OR-Tools CP-SAT) and ``milp`` (pywraplp) — registers
unconditionally but degrades gracefully: when the optional ``ortools``
dependency is absent the backend emits a structured
:class:`~repro.solver.backends.ortools_exact.OrToolsUnavailableWarning` and
``solve`` falls back to the deterministic heuristic, never raising an
``ImportError``.

For backends that cannot guarantee a complete answer (the exact and
LP-rounding backends), ``solve`` also computes the deterministic heuristic
solution as a baseline: it is the fallback when the requested backend fails
or its budget expires, it fills in applications an exhausted incumbent left
out, and the better of (requested, baseline) under the *raw* objective is
returned — so the exact path is never reported worse than the heuristic it
could have used. Heuristic-family backends (``heuristic``, ``greedy``) are
complete by construction and skip the baseline.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro.cluster.resources import ResourceVector
from repro.core.objective import ObjectiveKind
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.solver.config import (
    AUTO_EXACT_PAIR_LIMIT,
    AUTO_MIN_EXACT_BUDGET_S,
    DEFAULT_SOLVER_CONFIG,
    SolverConfig,
)

if TYPE_CHECKING:  # imported lazily at runtime: backend -> compile -> core ->
    # policies -> registry would otherwise cycle on first import
    from repro.solver.backend import PlacementSolver, SolveRequest

_BACKENDS: dict[str, Callable[[], PlacementSolver]] = {}
_ALIASES: dict[str, str] = {}
_builtins_loaded: bool = False


def register_backend(name: str, aliases: Iterable[str] = ()) -> Callable[[type], type]:
    """Class decorator registering a :class:`PlacementSolver` implementation.

    The class must be constructible with no arguments; ``solve`` instantiates
    a fresh backend per call so backends may keep per-solve state.
    """

    def decorate(cls: type) -> type:
        if name in _BACKENDS:
            raise ValueError(f"solver backend {name!r} is already registered")
        taken = [a for a in aliases if a in _ALIASES or a in _BACKENDS]
        if taken:
            raise ValueError(f"solver backend aliases already registered: {taken}")
        _BACKENDS[name] = cls
        for alias in aliases:
            _ALIASES[alias] = name
        return cls

    return decorate


def _ensure_builtins() -> None:
    """Import the built-in backend modules (registering them) exactly once.

    Guarded by an explicit flag rather than ``_BACKENDS`` being empty, so an
    external package registering its own backend first does not suppress the
    built-ins.
    """
    global _builtins_loaded
    if not _builtins_loaded:
        import repro.solver.backends  # noqa: F401  (import side effect: registration)
        _builtins_loaded = True  # only after the import succeeds, so failures retry


def available_backends() -> tuple[str, ...]:
    """Canonical names of every registered backend, sorted."""
    _ensure_builtins()
    return tuple(sorted(_BACKENDS))


def backend_names(include_auto: bool = True) -> tuple[str, ...]:
    """Every accepted backend spelling: canonical names, aliases, and ``auto``."""
    _ensure_builtins()
    names = set(_BACKENDS) | set(_ALIASES)
    if include_auto:
        names.add("auto")
    return tuple(sorted(names))


def get_backend(name: str) -> PlacementSolver:
    """Instantiate a backend by canonical name or alias.

    Raises :class:`ValueError` for unknown names (``"auto"`` included — it is
    a selection rule, not a backend; resolve it through :func:`solve`).
    """
    _ensure_builtins()
    canonical = _ALIASES.get(name, name)
    if canonical not in _BACKENDS:
        raise ValueError(
            f"unknown solver backend {name!r}; available backends: "
            f"{', '.join(available_backends())} (plus aliases "
            f"{', '.join(sorted(_ALIASES))} and 'auto')")
    return _BACKENDS[canonical]()


def resolve_backend_name(backend: str, request: SolveRequest) -> str:
    """Resolve ``backend`` (possibly ``"auto"``) to a canonical backend name."""
    _ensure_builtins()
    if backend != "auto":
        canonical = _ALIASES.get(backend, backend)
        if canonical not in _BACKENDS:
            get_backend(backend)  # raises with the full message
        return canonical
    if request.time_budget_s is not None and request.time_budget_s < AUTO_MIN_EXACT_BUDGET_S:
        return "heuristic"
    if request.report.n_candidate_pairs <= AUTO_EXACT_PAIR_LIMIT:
        return "bnb"
    return "heuristic"


def solve(
    problem: PlacementProblem,
    backend: str = "auto",
    *,
    objective: ObjectiveKind = ObjectiveKind.CARBON,
    alpha: float = 0.0,
    manage_power: bool = True,
    time_budget_s: float | None = None,
    warm_start: dict[str, int] | None = None,
    max_nodes: int | None = None,
    seed: int = 0,
    config: SolverConfig | None = None,
) -> PlacementSolution:
    """Solve a placement problem with the requested backend.

    Parameters
    ----------
    problem:
        The placement problem instance.
    backend:
        Canonical backend name, alias, or ``"auto"`` (exact for small
        instances with enough budget, heuristic otherwise).
    objective / alpha / manage_power:
        Objective selection, forwarded to every backend.
    time_budget_s:
        Wall-clock budget shared by the whole solve (baseline included).
    warm_start:
        Previous placement (app id -> server index) seeding the heuristic —
        the incremental epoch re-solve path.
    max_nodes:
        Node budget for the branch-and-bound backend.
    seed:
        Seed for the randomised backends.
    config:
        Execution configuration (intra-epoch shard count for the dense greedy
        kernel); defaults to the serial kernel. Bit-identical solutions for
        every setting.

    Returns
    -------
    PlacementSolution
        Always a solution (empty when nothing is placeable); its
        ``backend_name`` records which backend actually produced it.
    """
    from repro.solver.backend import SolveRequest

    start = time.monotonic()
    request = SolveRequest(problem=problem, objective=objective, alpha=alpha,
                           manage_power=manage_power, time_budget_s=time_budget_s,
                           warm_start=warm_start, max_nodes=max_nodes, seed=seed,
                           config=config or DEFAULT_SOLVER_CONFIG, started_at=start)
    name = resolve_backend_name(backend, request)
    solver = get_backend(name)

    # The requested backend runs first so it receives the full time budget.
    primary = solver.solve(request)
    if primary is not None and not getattr(solver, "needs_fallback", True):
        # Heuristic-family backends always return a complete feasible answer
        # on their own; a baseline run would be redundant work (and would
        # silently substitute local-search results for a pure-greedy request).
        primary.backend_name = name
        primary.solve_time_s = time.monotonic() - start
        primary.warm_hints_dropped = request.warm_hints_dropped
        return primary

    # The heuristic baseline runs on whatever budget remains (both its greedy
    # construction and its local search respect the request deadline — an
    # expired budget yields a valid solution flagged construction_truncated)
    # and serves as fallback, gap-filler, and quality floor.
    baseline = get_backend("heuristic").solve(request)
    assert baseline is not None  # the heuristic always returns a solution
    baseline.backend_name = "heuristic"

    chosen = baseline
    if primary is not None:
        primary.backend_name = name
        _fill_missing(request, primary, baseline)
        chosen = _better(request, primary, baseline)
    chosen.solve_time_s = time.monotonic() - start
    chosen.warm_hints_dropped = request.warm_hints_dropped
    return chosen


def _fill_missing(request: SolveRequest, primary: PlacementSolution,
                  baseline: PlacementSolution) -> None:
    """Fill applications the primary backend left out from the baseline.

    An exhausted node/time budget can return an incumbent that covers only
    part of the batch; the deterministic heuristic's choices complete it so
    callers always see every placeable application handled. A baseline choice
    is only adopted when the incumbent's remaining capacity actually fits it
    — the heuristic may have loaded that server differently — otherwise the
    application is reported unplaced (and ``_better`` then usually prefers
    the complete baseline solution).
    """
    problem = request.problem
    missing = [app for app in problem.applications
               if app.app_id not in primary.placements and app.app_id not in primary.unplaced]
    if not missing:
        return
    remaining = [cap.copy() for cap in problem.capacities]
    for app_id, j in primary.placements.items():
        try:
            remaining[j] = remaining[j] - problem.demands[problem.app_index(app_id)][j]
        except ValueError:  # incumbent overloads j; be conservative, never add there
            remaining[j] = ResourceVector()
    for app in missing:
        j = baseline.placements.get(app.app_id)
        if j is None:
            primary.unplaced.append(app.app_id)
            continue
        i = problem.app_index(app.app_id)
        if not problem.demands[i][j].fits_within(remaining[j]):
            primary.unplaced.append(app.app_id)
            continue
        remaining[j] = remaining[j] - problem.demands[i][j]
        primary.placements[app.app_id] = j
        if request.manage_power:
            primary.power_on = np.asarray(primary.power_on, dtype=float)
            primary.power_on[j] = 1.0


def _better(request: SolveRequest, primary: PlacementSolution,
            baseline: PlacementSolution) -> PlacementSolution:
    """The better of two solutions: more placements, then lower raw objective."""
    from repro.solver.backend import raw_objective_value

    if baseline.n_placed > primary.n_placed:
        return baseline
    if baseline.n_placed == primary.n_placed and \
            raw_objective_value(request, baseline) < raw_objective_value(request, primary) - 1e-9:
        return baseline
    return primary
