"""Two-tier scenario compilation: one dense placement kernel shared across all policies.

The compilation layer is split along the epoch-invariance boundary:

* :class:`ScenarioCompilation` (**scenario lifetime**) — built once per
  substrate (servers + latency matrix + carbon service) through
  :func:`compile_scenario`: static latency/feasibility rows, per-device-class
  energy and demand blocks, capacity tensors, and nearest-feasible latencies,
  all keyed by application class. Each epoch then contributes only an
  :class:`EpochDelta` (epoch-mean intensities, the arrival batch, warm-start
  allocation state) that is assembled into an :class:`EpochCompilation` by
  row gathers — bit-identical to a cold rebuild (see the scenario-lifetime
  section below).
* :class:`EpochCompilation` (**one epoch**) — everything the epoch's policies
  share, computed once per problem.

At CDN scale the same :class:`~repro.core.problem.PlacementProblem` is solved
by four policies per epoch, and before this layer existed each of them
independently re-derived the feasibility report, the objective coefficient
matrices, and the dense cost/demand tensors. An :class:`EpochCompilation`
precomputes all of that exactly once per problem and hands the read-only
results to every consumer — the solver backends (through
:class:`~repro.solver.backend.SolveRequest`), the baseline policies, and the
CDN simulator's metrics loop:

* the feasibility report (latency SLO + profile support + standalone capacity);
* per-objective coefficient matrices (carbon / energy / latency / intensity,
  plus the multi-objective blend), cached by ``(objective, alpha)``;
* :class:`DenseCosts` tensors, cached by ``(objective, alpha, manage_power)``;
* the epoch-mean carbon intensities Ī_j (the problem's ``intensity`` vector);
* each application's nearest-feasible-server latency (the baseline for the
  paper's "increased latency" metric).

**Cache keys and invalidation.** The compilation is memoised on the problem
instance (``compile_placement`` returns the same object for the same
problem). Problems are immutable once built — each simulation epoch
constructs a fresh problem from fleet state, which naturally invalidates
everything. Code that mutates a problem in place (tests, mostly) must call
:func:`clear_compilation` afterwards.

**The one greedy kernel.** :func:`greedy_fill` is the single greedy placement
engine in the tree: most-constrained application first (fewest candidate
servers, larger maximum energy first among equals), each placed at the server
minimising the marginal augmented cost (assignment cost plus the activation
cost of switching a currently-off server on). Tie-breaking is by an epsilon
perturbation of the cost matrix (see :meth:`DenseCosts.from_matrices`):
objective-equal servers are ordered by the tie-break matrix — one-way latency
for the carbon/energy/intensity objectives, operational carbon for the
latency objective — and remaining exact ties resolve to the lowest server
index. This replaces the seed's object-based ``greedy_place`` engine, whose
lexicographic ``(cost, tie)`` rule it reproduces up to that epsilon (a frozen
copy of the old engine served as a parity oracle for one release and has
since been retired).

**Wave-vectorised reconciliation.** Wherever speculative winners or shard
placements are replayed into the shared state, the replay runs in *waves*:
maximal serial-order prefixes whose capacity dependencies are provably
settled commit as one dense batched operation
(:meth:`GreedyState.place_batch`), and only the residual conflicting tail
drops to the exact per-application step. The wave path is bit-identical to
the per-application replay (``CARBON_EDGE_DISABLE_WAVE_REPLAY=1`` forces the
latter; the hypothesis suite and CI byte-diffs pin the contract) and is
shared by the serial kernel's cold fast path and the sharded reconciliation
pass. Shard tasks themselves execute through the persistent dispatch pool
(:mod:`repro.solver.dispatch`) instead of a per-call executor.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.filters import FeasibilityReport, filter_feasible_servers
from repro.core.objective import (
    ObjectiveKind,
    apply_tie_break,
    objective_coefficients,
    tie_break_matrix,
)
from repro.core.problem import (
    _EMPTY_DEMAND,
    INFEASIBLE_LATENCY_MS,
    PlacementProblem,
    _demand_for,
    _resolve_profile,
    ensure_dense_cell_budget,
)
from repro.cluster.resources import ResourceVector
from repro.core.solution import PlacementSolution
from repro.solver.config import MIN_SHARD_APPS
from repro.solver.dispatch import run_tasks
from repro.workloads.generator import (
    ApplicationBatch,
    LazyApplications,
    columnar_enabled,
)

if TYPE_CHECKING:  # typing only — no runtime dependency on these layers
    from repro.carbon.service import CarbonIntensityService
    from repro.cluster.server import EdgeServer
    from repro.network.latency import LatencyMatrix
    from repro.workloads.application import Application

@dataclass
class DenseCosts:
    """Dense numpy view of a placement instance for the vectorised kernels.

    Attributes
    ----------
    keys:
        Resource dimensions, the K axis of ``demand`` / ``capacity``.
    demand:
        (A, S, K) per-pair resource demands (zero outside the support mask).
    capacity:
        (S, K) available capacity per server.
    mask:
        (A, S) candidate mask from the feasibility report.
    cost:
        (A, S) assignment cost including the deterministic epsilon tie-break;
        ``+inf`` outside the mask.
    raw_assign:
        (A, S) un-augmented assignment coefficients (for reporting).
    activation:
        (S,) activation cost of switching a server on (zero when power is
        unmanaged).
    initially_on:
        (S,) bool, servers already on (all True when power is unmanaged).
    """

    keys: list[str]
    demand: np.ndarray
    capacity: np.ndarray
    mask: np.ndarray
    cost: np.ndarray
    raw_assign: np.ndarray
    activation: np.ndarray
    initially_on: np.ndarray

    @classmethod
    def from_matrices(
        cls,
        problem: PlacementProblem,
        report: FeasibilityReport,
        assign: np.ndarray,
        activation: np.ndarray | None = None,
        manage_power: bool = True,
        tie_breaker: np.ndarray | None = None,
    ) -> "DenseCosts":
        """Assemble dense tensors for arbitrary assignment/activation costs.

        The demand and capacity tensors are shared read-only with the problem
        (built once per epoch); only the cost matrix is objective-specific.
        ``tie_breaker`` is an optional (A, S) secondary cost: objective-equal
        candidates order by it through an epsilon perturbation scaled so the
        perturbation never exceeds ``1e-5`` of the largest feasible
        assignment cost. ``None`` disables the perturbation (exact ties then
        resolve to the lowest server index).
        """
        mask = report.mask
        s = problem.n_servers
        if activation is None:
            activation = np.zeros(s)
        cost = cls._tie_broken(assign, mask, tie_breaker)
        initially_on = (problem.current_power > 0.5) if manage_power \
            else np.ones(s, dtype=bool)
        return cls(keys=list(problem.resource_keys()),
                   demand=problem.demand_dense(),
                   capacity=problem.capacity_dense(),
                   mask=mask, cost=cost,
                   raw_assign=assign, activation=np.asarray(activation, dtype=float),
                   initially_on=initially_on)

    @staticmethod
    def _tie_broken(assign: np.ndarray, mask: np.ndarray,
                    tie: np.ndarray | None) -> np.ndarray:
        """Assignment cost with the epsilon tie-break perturbation.

        The rule and epsilon live in :func:`repro.core.objective.apply_tie_break`
        and are shared with the MILP builder, so every backend minimises the
        same augmented objective and cross-backend comparisons are apples to
        apples.
        """
        cost = assign.astype(float, copy=True)
        if tie is not None:
            cost = apply_tie_break(cost, mask, tie)
        return np.where(mask, cost, np.inf)

    def fits(self, i: int, capacity_left: np.ndarray) -> np.ndarray:
        """(S,) bool: servers with room for application ``i`` given remaining capacity."""
        return bool_all(self.demand[i] <= capacity_left + 1e-9)


def bool_all(fits_per_key: np.ndarray) -> np.ndarray:
    """All-dimensions reduction that tolerates a zero-width resource axis."""
    if fits_per_key.shape[-1] == 0:
        return np.ones(fits_per_key.shape[:-1], dtype=bool)
    return np.all(fits_per_key, axis=-1)


#: Environment kill-switch for the wave-vectorised reconciliation replay
#: (used by the CI byte-diff arms): set to ``1`` to force the per-application
#: replay loop everywhere ``reconcile_mode="auto"`` applies.
WAVE_REPLAY_ENV: str = "CARBON_EDGE_DISABLE_WAVE_REPLAY"

#: The construction deadline is polled every this many applications inside
#: the per-application loops (matching the local-search stride), so the
#: budget check costs one clock read per stride instead of per placement.
_DEADLINE_STRIDE: int = 64


def _expired(deadline: float | None) -> bool:
    """Whether an (optional) absolute monotonic deadline has passed."""
    return deadline is not None and time.monotonic() >= deadline


def wave_replay_enabled() -> bool:
    """Whether ``reconcile_mode="auto"`` resolves to the wave replay."""
    return os.environ.get(WAVE_REPLAY_ENV, "").strip().lower() not in (
        "1", "true", "yes", "on")


def _use_wave_replay(reconcile_mode: str) -> bool:
    """Resolve a reconcile knob: explicit modes win, ``auto`` follows the
    :data:`WAVE_REPLAY_ENV` kill-switch (wave unless disabled)."""
    if reconcile_mode == "wave":
        return True
    if reconcile_mode == "serial":
        return False
    return wave_replay_enabled()


@dataclass
class FillStats:
    """Execution telemetry of the greedy fills run against one state.

    Pure diagnostics, never inputs: the numbers describe *how* the replay
    executed (and differ between reconcile modes and epochs) while the
    placements stay bit-identical. Accumulated on :attr:`GreedyState.stats`
    and surfaced as ``wave_count`` / ``revalidation_rate`` on
    :class:`~repro.core.solution.PlacementSolution` and ``EpochRecord``.
    """

    waves: int = 0
    wave_placements: int = 0
    serial_steps: int = 0
    invalidations: int = 0
    pending: int = 0
    #: True when a construction deadline expired mid-fill and the kernel
    #: returned early — the partial assignment is valid (every committed
    #: placement is the serial kernel's own choice) but applications past the
    #: cut-off were left unplaced. Surfaced as
    #: ``PlacementSolution.construction_truncated``.
    truncated: bool = False

    @property
    def revalidation_rate(self) -> float:
        """Fraction of processed applications that took the exact
        per-application step instead of a batched wave commit."""
        if self.pending == 0:
            return 0.0
        return self.serial_steps / self.pending


class GreedyState:
    """Mutable assignment state shared by the construction and search phases."""

    def __init__(self, dense: DenseCosts) -> None:
        self.dense = dense
        n_apps, n_servers = dense.mask.shape
        self.assignment = np.full(n_apps, -1, dtype=int)
        self.capacity_left = dense.capacity.copy()
        self.served = np.zeros(n_servers, dtype=int)
        self.stats = FillStats()

    def clone(self) -> "GreedyState":
        """Independent copy of the mutable state over the same shared tensors.

        Shard workers solve against clones so concurrent shards never mutate
        the shared state; the reconciliation pass replays their placements
        into the original afterwards. Clones start with fresh telemetry —
        their fills are scratch work, not part of the original's replay.
        """
        other = GreedyState.__new__(GreedyState)
        other.dense = self.dense
        other.assignment = self.assignment.copy()
        other.capacity_left = self.capacity_left.copy()
        other.served = self.served.copy()
        other.stats = FillStats()
        return other

    def would_activate(self) -> np.ndarray:
        """(S,) bool: servers an assignment would newly switch on right now."""
        return (self.served == 0) & ~self.dense.initially_on

    def place(self, i: int, j: int) -> None:
        """Commit application ``i`` to server ``j``."""
        self.assignment[i] = j
        self.capacity_left[j] -= self.dense.demand[i, j]
        self.served[j] += 1

    def place_batch(self, apps: np.ndarray, servers: np.ndarray) -> None:
        """Commit one wave of placements with dense batched operations.

        ``apps`` / ``servers`` are parallel index arrays in the serial
        kernel's processing order. ``np.ufunc.at`` applies repeated indices
        sequentially in order of appearance, so the per-server float
        subtraction sequence — and therefore ``capacity_left``, byte for
        byte — is identical to issuing the same :meth:`place` calls one at a
        time (the hypothesis suite pins this). Shared by the serial kernel's
        cold fast path and the sharded reconciliation pass; callers are
        responsible for only batching placements whose validity cannot depend
        on each other (see :func:`_replay_waves`).
        """
        if len(apps) == 0:
            return
        self.assignment[apps] = servers
        np.subtract.at(self.capacity_left, servers,
                       self.dense.demand[apps, servers])
        np.add.at(self.served, servers, 1)
        self.stats.waves += 1
        self.stats.wave_placements += int(len(apps))

    def move(self, i: int, j0: int, j1: int) -> None:
        """Relocate application ``i`` from server ``j0`` to ``j1``."""
        self.capacity_left[j0] += self.dense.demand[i, j0]
        self.served[j0] -= 1
        self.place(i, j1)


def _pending_order(state: GreedyState, energy_j: np.ndarray,
                   apps: Sequence[int] | None = None) -> np.ndarray:
    """Still-unassigned applications in the kernel's processing order.

    Most-constrained first: fewest candidate servers, then larger maximum
    energy among equals; the stable sort resolves remaining ties by
    application index. Restricting to ``apps`` yields the same *relative*
    order as the full sort (stability), which is what makes per-shard
    processing order-compatible with the serial kernel. Implemented as a
    stable ``np.lexsort`` over the same keys the original per-application
    tuple sort compared, so the order is unchanged — and fully vectorised
    (no per-application Python loop), which matters at 10^6 applications.
    """
    dense = state.dense
    if apps is None:
        pending = np.flatnonzero(state.assignment < 0)
    else:
        idx = np.asarray(apps, dtype=int)
        pending = idx[state.assignment[idx] < 0] if len(idx) else idx
    if len(pending) <= 1:
        return pending
    counts = dense.mask[pending].sum(axis=1)
    max_energy = energy_j[pending].max(axis=1, initial=0.0)
    return pending[np.lexsort((-max_energy, counts))]


def greedy_fill(state: GreedyState, energy_j: np.ndarray,
                apps: Sequence[int] | None = None,
                reconcile_mode: str = "auto",
                deadline: float | None = None) -> None:
    """THE greedy placement kernel (every policy and backend routes here).

    Places each still-unassigned application at its cheapest marginal-cost
    server: most-constrained application first (fewest candidates, then
    larger maximum energy so heavy applications grab green capacity before it
    fills up), marginal cost = tie-broken assignment cost plus the activation
    cost when the assignment would switch the server on. ``np.argmin`` picks
    the lowest server index among exact ties.

    ``apps`` restricts the fill to a subset of applications (the intra-epoch
    shard path); ``None`` processes every unassigned application.

    An application is only ever placed at a *finite* marginal cost: when every
    feasible candidate costs ``+inf`` (possible only for hand-built cost
    matrices — the compiled objective coefficients are finite inside the
    mask), the application stays unplaced instead of landing on ``argmin``'s
    arbitrary index-0 tie, which could fall outside the candidate mask.

    When the activation channel is provably cold (every server is initially
    on, already serving, or free to activate — the same condition the shard
    planner's speculative mode tests), the kernel runs the
    speculate-and-revalidate schedule serially: one batched row-argmin picks
    every application's capacity-oblivious winner, and the replay commits
    them — in waves of dense batched operations by default
    (:func:`_replay_waves`), or through the per-application loop when
    ``reconcile_mode`` (or the ``CARBON_EDGE_DISABLE_WAVE_REPLAY``
    kill-switch) selects it. The placements — and the float arithmetic order
    of the shared state — are bit-identical to the naive loop by the
    certificate documented on :func:`plan_shards`, for every mode.

    ``deadline`` (absolute monotonic seconds) makes the construction itself
    anytime: the fill polls it at coarse boundaries (every
    :data:`_DEADLINE_STRIDE` applications, or per replay round) and returns
    early with :attr:`FillStats.truncated` set when it expires. Every
    placement committed before the cut-off is exactly the serial kernel's
    own choice, so the partial assignment is valid — applications past the
    cut-off simply stay unplaced. ``deadline=None`` (every bit-identity
    consumer) leaves the schedule untouched.
    """
    dense = state.dense
    order = _pending_order(state, energy_j, apps)
    if not len(order):
        return
    if _expired(deadline):
        state.stats.truncated = True
        return
    activation_coupled = (dense.activation != 0.0) & ~dense.initially_on \
        & (state.served == 0)
    # The finiteness guard keeps the cold certificate exact even for
    # pathological hand-built inputs: a non-finite activation cost on a
    # never-activating server still poisons the naive loop's marginal row
    # (inf * 0.0 is NaN), which the static cost row would not reproduce.
    if not activation_coupled.any() and np.isfinite(dense.activation).all():
        _greedy_fill_cold(state, order, reconcile_mode, deadline)
        return
    _greedy_fill_live(state, order, deadline)


def _greedy_fill_live(state: GreedyState, order: Sequence[int],
                      deadline: float | None = None) -> None:
    """The naive per-row schedule: full feasibility scan and marginal-cost
    row per application. Required when the activation channel is live (the
    marginal row genuinely changes as servers switch on); also the reference
    arm of the kernel benchmark."""
    dense = state.dense
    state.stats.pending += len(order)
    for k, i in enumerate(order):
        if deadline is not None and k % _DEADLINE_STRIDE == 0 \
                and time.monotonic() >= deadline:
            state.stats.truncated = True
            return
        state.stats.serial_steps += 1
        feasible = dense.mask[i] & dense.fits(i, state.capacity_left)
        if not feasible.any():
            continue
        marginal = dense.cost[i] + dense.activation * state.would_activate()
        marginal = np.where(feasible, marginal, np.inf)
        j = int(np.argmin(marginal))
        if np.isfinite(marginal[j]):
            state.place(i, j)


def _greedy_fill_cold(state: GreedyState, order: Sequence[int],
                      reconcile_mode: str = "auto",
                      deadline: float | None = None) -> None:
    """Serial speculate-and-revalidate fill for a cold activation channel.

    Identical to the reconciliation replay of :func:`greedy_fill_sharded`'s
    speculative mode, minus the thread pool: the marginal-cost row is exactly
    the static ``dense.cost`` row at every point of the fill (the activation
    term is identically zero), so the capacity-oblivious row argmin is the
    serial choice whenever it still fits — and capacity only ever shrinks, so
    a winner that fits at its turn was never beaten earlier. The replay
    commits the winners in waves (:func:`_replay_waves`) unless the reconcile
    mode selects the per-application loop — bit-identical either way.
    """
    dense = state.dense
    # One authoritative copy of the batched speculative argmin (lowest-index
    # ties, -1 sentinel for rows with no finite candidate) — shared with the
    # sharded path's free chunks.
    order = np.asarray(order, dtype=int)
    _, choices = _argmin_chunk(dense, order)
    state.stats.pending += len(order)
    if _use_wave_replay(reconcile_mode):
        _replay_waves(state, order, choices, deadline)
    else:
        _replay_per_app(state, order, choices, deadline)


def _replay_step(state: GreedyState, i: int, j: int) -> None:
    """The exact per-application replay step for one speculative winner.

    O(K) revalidation of the winner against the evolving capacity (the same
    comparison ``DenseCosts.fits`` performs), falling back to the exact
    serial step — full feasibility scan plus static-cost argmin — when the
    winner was invalidated. The single place the per-application replay and
    the wave replay's boundary handling share, so both arms perform the same
    arithmetic in the same order.
    """
    dense = state.dense
    demand, capacity_left = dense.demand, state.capacity_left
    state.stats.serial_steps += 1
    if j < 0:
        # No finite-cost candidate at all: the exact step provably leaves
        # the application unplaced (its feasible set is a subset).
        return
    if bool(np.all(demand[i, j] <= capacity_left[j] + 1e-9)):
        state.place(i, j)
        return
    # Invalidated winner: exact serial step for this row.
    state.stats.invalidations += 1
    feasible = dense.mask[i] & bool_all(demand[i] <= capacity_left + 1e-9)
    if not feasible.any():
        return
    marginal = np.where(feasible, dense.cost[i], np.inf)
    j2 = int(np.argmin(marginal))
    if np.isfinite(marginal[j2]):
        state.place(i, j2)


def _replay_per_app(state: GreedyState, order: np.ndarray,
                    choices: np.ndarray,
                    deadline: float | None = None) -> None:
    """The per-application reconciliation replay (the ``"serial"`` arm).

    Runs :func:`_replay_step` for every application in processing order —
    exactly the pre-wave replay loop. Kept as the kill-switch path the CI
    byte-diff jobs pin, the baseline arm the wave-reconcile benchmark
    measures against, and the tail fallback of :func:`_replay_waves`.
    """
    for k, i in enumerate(order):
        if deadline is not None and k % _DEADLINE_STRIDE == 0 \
                and time.monotonic() >= deadline:
            state.stats.truncated = True
            return
        _replay_step(state, int(i), int(choices[k]))


#: The wave replay falls back to the per-application tail once it has scanned
#: this many multiples of the pending-application count across its rounds, so
#: adversarially conflicting instances pay at most a few dense passes of
#: planning overhead on top of the serial work they genuinely need.
_WAVE_SCAN_BUDGET_FACTOR: int = 8


def _replay_waves(state: GreedyState, order: np.ndarray,
                  choices: np.ndarray,
                  deadline: float | None = None) -> None:
    """Wave-vectorised reconciliation replay of speculative winners.

    Partitions the replay order into *waves* — maximal serial-order prefixes
    of placements whose capacity dependencies are already settled — commits
    each wave with one dense batched operation
    (:meth:`GreedyState.place_batch`), and drops to the exact
    per-application step (:func:`_replay_step`) only at wave boundaries: the
    residual conflicting tail.

    **Wave construction rule.** Within the remaining replay order, group the
    winners by target server and take per-server *prefix sums* of their
    demand in processing order. A placement is *settled* when its inclusive
    prefix sum fits the server's current remaining capacity with slack to
    spare: every earlier winner on that server then also fits at its own
    turn (smaller prefix), so no interleaving within the wave can invalidate
    it, and the speculative certificate (see :func:`plan_shards`) makes each
    such winner the serial kernel's own choice. The wave is the maximal
    prefix of the order consisting of settled placements (winnerless rows
    commit nothing and never bound a wave); the first unsettled placement is
    the boundary, re-derived by the exact per-application step — its
    fallback may land anywhere, which is why the next round recomputes the
    prefix sums against the updated capacity.

    Commit order — waves in prefix order, placements in processing order
    within each wave, boundaries in between — is exactly the serial kernel's
    processing order, so the per-server float subtraction sequence is
    reproduced byte for byte (see :meth:`GreedyState.place_batch`). Within a
    wave the *choice* of each placement is order-immaterial by the
    certificate above; only the arithmetic order is preserved, for free, by
    committing in processing order.

    The slack mirrors the shard planner's: the certificate compares
    vectorised cumulative sums against what the serial kernel computes by
    sequential subtraction, so the relative terms cover float reassociation
    drift (of both the capacity row and the cumulative sums the segmented
    prefix trick subtracts) and the absolute term covers the per-placement
    fit tolerance accumulated over a server's winners. Overshooting the
    slack only shrinks waves — never changes placements.
    """
    n = len(order)
    if n == 0:
        return
    dense = state.dense
    capacity_left = state.capacity_left            # live view, mutated by commits
    has_winner = choices >= 0
    targets = np.where(has_winner, choices, 0)
    # Winner demand rows aligned with the replay order ((P, K); zero for
    # winnerless rows so they never perturb a prefix sum).
    wdemand = np.where(has_winner[:, None], dense.demand[order, targets], 0.0)
    budget = _WAVE_SCAN_BUDGET_FACTOR * n
    pos = 0
    while pos < n:
        if _expired(deadline):  # polled once per wave round
            state.stats.truncated = True
            return
        r = n - pos
        budget -= r
        t = targets[pos:]
        w = wdemand[pos:]
        hw = has_winner[pos:]
        # Segmented per-server prefix sums of winner demand in processing
        # order: the stable argsort groups equal targets while preserving
        # replay order inside each group, so the inclusive cumulative sum at
        # each position is exactly the demand the serial kernel would have
        # subtracted from that server up to and including that placement.
        by_server = np.argsort(t, kind="stable")
        sorted_t = t[by_server]
        sorted_w = w[by_server]
        cum = np.cumsum(sorted_w, axis=0)
        group_start = np.empty(r, dtype=bool)
        group_start[0] = True
        group_start[1:] = sorted_t[1:] != sorted_t[:-1]
        start_idx = np.maximum.accumulate(
            np.where(group_start, np.arange(r), 0))
        base = cum[start_idx] - sorted_w[start_idx]
        prefix = cum - base                         # (r, K) inclusive, per server
        counts = np.bincount(t[hw], minlength=len(capacity_left))
        cap_row = capacity_left[sorted_t]
        slack = (1e-9 * (counts[sorted_t][:, None] + 1)
                 + 1e-7 * np.abs(cap_row)
                 + 1e-7 * np.abs(base))             # cumsum-cancellation guard
        settled_sorted = bool_all(prefix <= cap_row - slack) | ~hw[by_server]
        settled = np.empty(r, dtype=bool)
        settled[by_server] = settled_sorted
        unsettled = np.flatnonzero(~settled)
        cut = int(unsettled[0]) if len(unsettled) else r
        if cut:
            wave = slice(pos, pos + cut)
            winners = has_winner[wave]
            state.place_batch(order[wave][winners], choices[wave][winners])
            pos += cut
        if pos >= n:
            return
        # Boundary: the first placement the certificate could not settle.
        _replay_step(state, int(order[pos]), int(choices[pos]))
        pos += 1
        if budget <= 0:
            # Productivity guard: conflicts are too dense for wave planning
            # to pay — finish the tail with the per-application replay.
            _replay_per_app(state, order[pos:], choices[pos:], deadline)
            return


# -- intra-epoch sharding ------------------------------------------------------
#
# The sharded kernel partitions the compiled epoch tensors along the
# application axis and solves independent shards on a worker pool, with a
# determinism contract: for every shard count the merged solution — and the
# full GreedyState (assignment, remaining capacity, served counts, down to
# float arithmetic order) — is bit-identical to the serial kernel's. The
# contract is proof-based rather than hopeful: shards only ever commit
# decisions that are provably identical to the serial interleaving's, and
# anything unprovable is re-derived by the exact serial step during
# reconciliation (ultimately falling back to the serial kernel wholesale).
#
# Two state channels couple applications in ``greedy_fill``:
#
# * capacity  — a placement shrinks ``capacity_left`` on its server, which can
#   flip a later application's ``fits`` there; capacity is *monotone*: it only
#   ever shrinks during a fill.
# * activation — the first placement on an initially-off server zeroes its
#   ``would_activate`` term, changing later marginal costs on that server.
#
# **Speculative mode** (the production CDN path) applies whenever the
# activation channel is provably cold — every server is initially on, already
# serving, or carries a zero activation cost — which makes each application's
# marginal-cost row exactly its static ``dense.cost`` row at every point of
# the fill. The speculative winner of each row is the globally cheapest
# masked candidate, ignoring capacity entirely. The certificate is that no
# better candidate exists at all: the serial kernel minimises the same cost
# row over a *subset* of the mask (the candidates that fit at the
# application's turn), so whenever the speculative winner itself fits at that
# turn it IS the serial argmin — same minimum, same lowest-index tie. The
# serial-order reconciliation replay therefore only has to re-check the
# winner against the evolving shared capacity — an O(K) scalar test —
# committing it when it fits and re-running the exact serial step for that
# application when it does not (or when the row had no finite candidate).
# Replay applies placements through the same ``place()`` calls in the same
# order as the serial kernel, so the shared state reproduces the serial
# float arithmetic byte for byte. NOTE for maintainers: the per-application
# revalidation is load-bearing — the speculation never looked at capacity,
# so skipping it for any "known-fitting" winner breaks the contract.
#
# The speculate-and-revalidate schedule proved so much faster than the naive
# per-row loop that the serial kernel now runs it directly whenever the
# channel is cold (:func:`_greedy_fill_cold`): one batched row-argmin plus
# the O(K)-per-application replay, no pool. Speculative *plans* therefore no
# longer dispatch — ``greedy_fill_sharded`` routes them to the serial kernel,
# which performs the identical arithmetic without planning or thread
# overhead — and the dispatch machinery below serves component mode.
#
# **Component mode** handles live activation coupling. A server is **hot**
# when a coupling can actually fire during this fill: *contended* (a
# realisable placement set could overflow one of its capacity keys and flip a
# pending application's fit — certified by the fit-filtered, winner-pinned
# interest test in :func:`_contended_servers`, strictly sharper than the
# historical sum-of-all-interested-demand rule) or *activation-coupled*
# (initially off,
# nonzero activation cost, not yet serving). On a non-hot server, ``fits``
# holds for every interested application no matter which realisable subset
# places there, and the activation term is identically zero — placements
# there are invisible to every other application. An application touching no
# hot server is **free** (a pure row argmin, order-independent); coupled
# applications group into connected components over shared hot servers, which
# touch disjoint hot-server sets by construction and therefore evolve their
# hot state exactly as in the serial interleaving while running on different
# shards. Component mode is first a correctness-preserving degradation path:
# free chunks vectorise (and release the GIL), but coupled bins run the
# per-application Python loop, which only genuinely overlaps on free-threaded
# interpreters — the dispatch layer (:mod:`repro.solver.dispatch`) pools
# exactly then and runs inline otherwise.


@dataclass
class ShardPlan:
    """One epoch's provably-equivalent partition of the pending applications.

    Attributes
    ----------
    mode:
        ``"speculate"`` (cold activation channel: batched speculative choices
        plus an O(K)-per-application validation replay) or ``"components"``
        (live activation coupling: free chunks plus connected-component bins).
    n_shards:
        Requested shard count (worker-pool width).
    order:
        Every pending application in the serial kernel's processing order —
        the replay order of the reconciliation pass.
    free_chunks:
        Per-shard slices of the application axis solved as one batched
        operation each (all pending applications in speculative mode, the
        provably order-independent ones in component mode).
    bins:
        Per-shard groups of coupled applications (whole connected components,
        longest-processing-time balanced), each in serial processing order.
        Empty in speculative mode.
    hot:
        (S,) bool — servers with provable capacity or activation coupling.
    """

    mode: str
    n_shards: int
    order: np.ndarray
    free_chunks: list[np.ndarray]
    bins: list[np.ndarray]
    hot: np.ndarray

    @property
    def n_pending(self) -> int:
        return len(self.order)

    @property
    def n_free(self) -> int:
        return sum(len(c) for c in self.free_chunks)

    @property
    def n_coupled(self) -> int:
        return sum(len(b) for b in self.bins)

    @property
    def n_tasks(self) -> int:
        return len(self.free_chunks) + len(self.bins)

    @property
    def parallel_fraction(self) -> float:
        """Share of pending applications outside the largest single task."""
        if not self.n_pending:
            return 0.0
        largest = max((len(b) for b in self.bins), default=0)
        largest = max(largest, max((len(c) for c in self.free_chunks), default=0))
        return 1.0 - largest / self.n_pending

    @property
    def is_parallel(self) -> bool:
        """Whether dispatching this plan beats calling the serial kernel."""
        return self.n_tasks >= 2


def plan_shards(state: GreedyState, energy_j: np.ndarray, n_shards: int,
                min_shard_apps: int = MIN_SHARD_APPS) -> ShardPlan | None:
    """Partition the pending applications into provably-equivalent shards.

    Returns ``None`` when sharding cannot help: fewer than ``min_shard_apps``
    pending applications, or a single shard requested. A returned plan may
    still be degenerate (``is_parallel`` False) when every application
    collapses into one coupled component — callers fall back to the serial
    kernel in both cases.
    """
    if n_shards <= 1:
        return None
    dense = state.dense
    if not np.isfinite(dense.activation).all():
        # Same guard as the serial kernel's cold fast path: non-finite
        # activation costs poison the naive marginal row (inf * 0.0 is NaN)
        # in ways neither fast mode reproduces — solve such instances with
        # the naive serial loop.
        return None
    order = np.asarray(_pending_order(state, energy_j), dtype=int)
    if len(order) < min_shard_apps:
        return None

    mask_p = dense.mask[order]                      # (P, S)
    activation_coupled = (dense.activation != 0.0) & ~dense.initially_on \
        & (state.served == 0)

    if not activation_coupled.any():
        # Cold activation channel: marginal costs are constants, so the
        # speculate-and-validate replay is exact for every application —
        # shard the whole pending axis evenly. No contention analysis is
        # needed (capacity conflicts surface as replay revalidations).
        chunks = [c for c in np.array_split(order, n_shards) if len(c)]
        return ShardPlan(mode="speculate", n_shards=n_shards, order=order,
                         free_chunks=chunks, bins=[], hot=activation_coupled)

    # Capacity-contention certificate, sharpened beyond the worst case by
    # ranking which demand is actually realisable per server (see
    # :func:`_contended_servers`) so fewer servers are marked hot — and
    # components stay small — at saturation.
    contended = _contended_servers(dense, state.capacity_left, order, mask_p,
                                   activation_coupled)
    hot = contended | activation_coupled

    hot_idx = np.nonzero(hot)[0]
    if len(hot_idx):
        touches_hot = mask_p[:, hot_idx].any(axis=1)
    else:
        touches_hot = np.zeros(len(order), dtype=bool)
    free = order[~touches_hot]
    coupled = order[touches_hot]

    free_chunks = [c for c in np.array_split(free, n_shards) if len(c)]
    bins = _bin_components(_coupled_components(mask_p[touches_hot], hot_idx, coupled),
                           n_shards)
    return ShardPlan(mode="components", n_shards=n_shards, order=order,
                     free_chunks=free_chunks, bins=bins, hot=hot)


def bool_any(exceeds_per_key: np.ndarray) -> np.ndarray:
    """Any-dimension reduction that tolerates a zero-width resource axis."""
    if exceeds_per_key.shape[-1] == 0:
        return np.zeros(exceeds_per_key.shape[:-1], dtype=bool)
    return np.any(exceeds_per_key, axis=-1)


def _contended_servers(dense: DenseCosts, capacity_left: np.ndarray,
                       order: np.ndarray, mask_p: np.ndarray,
                       activation_coupled: np.ndarray) -> np.ndarray:
    """(S,) bool — servers where this fill could flip a pending ``fits``.

    The historical certificate marked a server hot whenever the *summed*
    demand of every pending application whose candidate set includes it
    exceeded remaining capacity — sound but maximally pessimistic: at
    saturated epochs it marks nearly everything hot and sharding degrades
    toward serial. Three refinements keep more servers provably safe, each
    strictly conservative with respect to the coarse rule (at matched
    slack):

    * **Only currently-fitting demand is realisable.** ``fits`` is monotone
      during a fill — capacity only shrinks — so an application whose fit
      already fails on a server can *never* place there and contributes
      nothing to the load the server can actually attract. The coarse rule
      counted that phantom demand on every key.
    * **Unfit interest only matters at static winners.** A free application
      commits its static row argmin *without revalidation*, so the one case
      a currently-failing fit can corrupt is an application whose static
      winner is the very server it no longer fits (the serial kernel would
      place it elsewhere). Those winners are forced hot — which routes the
      application through a coupled bin's exact serial loop — instead of
      hot-flagging every server any unfit application merely glances at.
    * **Winner pinning (demand-ranked interest).** When every activation
      cost is non-negative, an application whose static winner is provably
      safe (non-hot under the first pass) is *pinned*: the winner fits and
      stays fitting (non-hot), no other candidate's marginal cost — static
      cost plus a non-negative activation term — can undercut the static
      argmin's, and exact ties resolve to the argmin's lower index. A
      pinned application therefore places exactly at its winner in every
      execution, so the second pass counts its demand only there rather
      than on every candidate it was merely interested in. One pass is
      sound (pinning is justified against the *larger* first-pass hot set,
      and hot sets only shrink); iterating further would be sound too but
      rarely pays.

    A note for maintainers tempted by top-``(m+1)`` ranked-prefix bounds
    (sum of the ``m + 1`` largest fitting demands, with ``m`` the longest
    fitting ascending prefix): the bound provably collapses onto the plain
    fitting-sum test — if the ``m + 1`` *largest* demands fit within
    capacity, so do the ``m + 1`` smallest, contradicting ``m``'s
    maximality — so it can never unmark a server the sum test marks.
    Realisable-load certificates sharper than the fitting sum require
    subset-sum reasoning, which is not worth its planning cost here.

    The slack mirrors the original certificate's reasoning: the certificate
    compares vectorised sums against what the serial kernel computes by
    sequential subtraction, so the relative term covers float reassociation
    drift and the count-scaled absolute term covers the per-placement
    ``fits`` tolerance compounding once per fitting member. Overshooting
    slack only marks more servers hot — never unsound.
    """
    n_pending, n_servers = mask_p.shape
    if capacity_left.shape[-1] == 0:
        # No capacity dimensions: fits holds vacuously everywhere, nothing
        # can ever be invalidated by capacity.
        return np.zeros(n_servers, dtype=bool)
    demand_p = dense.demand[order]                           # (P, S, K)
    fit_now = mask_p & bool_all(demand_p <= capacity_left[None] + 1e-9)

    # Static winners — the row argmin a free application would commit.
    rows = dense.cost[order]
    choice = np.argmin(rows, axis=1)
    has_winner = np.isfinite(rows[np.arange(n_pending), choice])
    unfit_winner = np.zeros(n_servers, dtype=bool)
    bad = has_winner & ~fit_now[np.arange(n_pending), choice]
    unfit_winner[choice[bad]] = True

    fitting = np.where(fit_now[:, :, None], demand_p, 0.0)   # (P, S, K)
    counts = fit_now.sum(axis=0)                             # (S,)
    slack = 1e-9 * (counts[:, None] + 1) + 1e-7 * np.abs(capacity_left)
    interest = fitting.sum(axis=0)                           # (S, K)
    contended = bool_any(interest > capacity_left - slack)

    capacity_hot = contended | unfit_winner
    if not contended.any() or bool((dense.activation < 0.0).any()):
        # Nothing to pin away, or adversarial negative activation costs (a
        # cheaper-than-static marginal can then beat the static argmin, so
        # winners are not pinnable).
        return capacity_hot
    hot0 = capacity_hot | activation_coupled
    pinned = has_winner & ~hot0[choice]
    if not pinned.any():
        return capacity_hot
    spread = fitting.copy()
    spread[pinned] = 0.0
    pinned_idx = np.flatnonzero(pinned)
    winner_targets = choice[pinned_idx]
    winner_demand = np.zeros_like(interest)
    np.add.at(winner_demand, winner_targets,
              demand_p[pinned_idx, winner_targets])
    interest = spread.sum(axis=0) + winner_demand
    return bool_any(interest > capacity_left - slack) | unfit_winner


def _coupled_components(coupled_mask: np.ndarray, hot_idx: np.ndarray,
                        coupled: np.ndarray) -> list[np.ndarray]:
    """Connected components of coupled applications over shared hot servers.

    Two applications belong to the same component when a chain of shared hot
    candidate servers links them. Min-label propagation over the bipartite
    app/hot-server incidence converges in a handful of vectorised passes
    (labels only decrease and are bounded below); each component comes back
    in serial processing order, components ordered by their first application.
    """
    n = len(coupled)
    if n == 0:
        return []
    rows, cols = np.nonzero(coupled_mask[:, hot_idx])
    labels = np.arange(n)
    for _ in range(n + 1):
        server_min = np.full(len(hot_idx), n, dtype=int)
        np.minimum.at(server_min, cols, labels[rows])
        new = labels.copy()
        np.minimum.at(new, rows, server_min[cols])
        new = np.minimum(new, new[new])             # pointer jumping
        if np.array_equal(new, labels):
            break
        labels = new
    _, inverse = np.unique(labels, return_inverse=True)
    return [coupled[inverse == k] for k in range(inverse.max() + 1)]


def _bin_components(components: list[np.ndarray], n_shards: int) -> list[np.ndarray]:
    """Balance whole components across at most ``n_shards`` bins (LPT rule).

    Components never split — splitting one would break the independence
    proof — so a single dominant component caps the achievable parallelism
    (``ShardPlan.parallel_fraction`` reports exactly that).
    """
    if not components:
        return []
    n_bins = min(n_shards, len(components))
    loads = [0] * n_bins
    bins: list[list[int]] = [[] for _ in range(n_bins)]
    by_size = sorted(range(len(components)), key=lambda c: (-len(components[c]), c))
    for c in by_size:
        b = min(range(n_bins), key=lambda k: (loads[k], k))
        bins[b].append(c)
        loads[b] += len(components[c])
    return [np.concatenate([components[c] for c in sorted(chosen)])
            for chosen in bins if chosen]


def _argmin_chunk(dense: DenseCosts, apps: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Batched static-cost choices for one shard of the application axis.

    One row argmin over ``dense.cost`` (``+inf`` outside the mask) per
    application — same values, same lowest-index ties, same skip on an
    infinite minimum as the serial kernel's
    ``argmin(where(feasible, marginal, inf))`` whenever the activation term
    vanishes on the row.

    * For a *free* application (component mode) this IS the final placement:
      fits always holds on its candidates, so feasible equals the mask at any
      point of the fill.
    * In speculative mode it is the *speculative winner*: capacity only
      shrinks during a fill, so every candidate preferred over the winner at
      the application's actual turn would also be preferred now — the
      reconciliation replay therefore only re-checks the winner's own fit.

    ``-1`` marks applications with no finite-cost candidate, which the
    serial kernel provably leaves unplaced.
    """
    rows = dense.cost[apps]
    choice = np.argmin(rows, axis=1).astype(int)
    finite = np.isfinite(rows[np.arange(len(apps)), choice])
    return apps, np.where(finite, choice, -1)


def _solve_coupled_bin(state: GreedyState, energy_j: np.ndarray,
                       apps: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Serial greedy fill of one bin of coupled components on a state clone.

    The clone's hot-server state evolves exactly as the serial kernel's: only
    this bin's applications can place on this bin's hot servers (components
    are closed over hot candidates, free applications have none), and
    placements elsewhere — by this bin on shared non-hot servers, or by other
    shards anywhere — can never flip a fits() or marginal-cost comparison.
    """
    clone = state.clone()
    greedy_fill(clone, energy_j, apps=apps)
    return apps, clone.assignment[apps]


def greedy_fill_sharded(state: GreedyState, energy_j: np.ndarray, n_shards: int,
                        min_shard_apps: int = MIN_SHARD_APPS,
                        reconcile_mode: str = "auto",
                        dispatch: str = "auto",
                        deadline: float | None = None) -> ShardPlan | None:
    """Sharded greedy placement, bit-identical to :func:`greedy_fill`.

    Plans shards (:func:`plan_shards`), solves them on the persistent
    dispatch pool (:mod:`repro.solver.dispatch`) — free-chunk argmins as one
    vectorised operation each, coupled component bins as serial fills on
    state clones — and runs the shared-capacity reconciliation pass: every
    shard placement is replayed into the shared state in the serial kernel's
    processing order, so assignment, ``capacity_left`` and ``served``
    reproduce the serial kernel byte for byte. In component mode every
    dispatched placement is individually certified equal to the serial
    kernel's choice (free argmins and closed coupled bins — see the module
    notes above), so the whole replay order is one settled wave, committed
    with dense batched operations in processing order unless
    ``reconcile_mode`` selects the per-application loop.

    Falls back to the serial kernel whenever the plan is missing or
    degenerate — and for *speculative* plans, whose batched-argmin-plus-
    replay schedule the serial kernel's cold fast path now executes
    identically (:func:`_greedy_fill_cold`, wave replay included) without
    paying for the pool, so dispatching them would only add planning and
    thread overhead for the same arithmetic. Component plans (live
    activation coupling) still dispatch, through the mode resolved by
    :func:`repro.solver.dispatch.resolve_dispatch_mode`.

    Returns the plan (``None`` when none was drawn) so callers can report
    shard diagnostics — :attr:`ShardPlan.parallel_fraction` describes the
    provably order-independent share of the construction whether it was
    dispatched or executed by the equivalent serial schedule.
    """
    if _expired(deadline):
        # Construction-budget early exit before any planning work: the empty
        # fill is a valid (flagged-incomplete) answer.
        state.stats.truncated = True
        return None
    plan = plan_shards(state, energy_j, n_shards, min_shard_apps)
    if plan is None or not plan.is_parallel or plan.mode == "speculate":
        greedy_fill(state, energy_j, reconcile_mode=reconcile_mode,
                    deadline=deadline)
        return plan
    dense = state.dense
    tasks = [partial(_argmin_chunk, dense, chunk) for chunk in plan.free_chunks]
    tasks += [partial(_solve_coupled_bin, state, energy_j, apps)
              for apps in plan.bins]
    proposed = np.full(len(state.assignment), -1, dtype=int)
    for apps, choices in run_tasks(tasks, mode=dispatch):
        proposed[apps] = choices
    # The reconciliation pass. Every certified placement commits verbatim
    # (no revalidation is needed — the component/free certificates proved
    # them equal to the serial kernel's choices), so the full replay order
    # is one settled wave; committing it in processing order reproduces the
    # serial kernel's per-server float subtraction sequence byte for byte.
    order = plan.order
    choices = proposed[order]
    placed = choices >= 0
    state.stats.pending += len(order)
    if _use_wave_replay(reconcile_mode):
        state.place_batch(order[placed], choices[placed])
    else:
        state.stats.serial_steps += int(placed.sum())
        for i, j in zip(order[placed], choices[placed]):
            state.place(int(i), int(j))
    return plan


def assignment_to_solution(problem: PlacementProblem, assignment: np.ndarray,
                           manage_power: bool = True) -> PlacementSolution:
    """Decode an (A,) assignment vector (server index or -1) into a solution."""
    placements: dict[str, int] = {}
    unplaced: list[str] = []
    for i, app in enumerate(problem.applications):
        j = int(assignment[i])
        if j >= 0:
            placements[app.app_id] = j
        else:
            unplaced.append(app.app_id)
    if manage_power:
        power_on = problem.current_power.copy()
        for j in set(placements.values()):
            power_on[j] = 1.0
    else:
        power_on = np.ones(problem.n_servers)
    return PlacementSolution(problem=problem, placements=placements,
                             power_on=power_on, unplaced=unplaced)


def dense_greedy_solution(
    problem: PlacementProblem,
    assign: np.ndarray,
    activation: np.ndarray | None = None,
    tie_breaker: np.ndarray | None = None,
) -> PlacementSolution:
    """One-shot greedy placement for an arbitrary cost matrix.

    Used by policies whose objective is not one of the registered
    :class:`ObjectiveKind` coefficient builders (e.g. the Random baseline's
    sampled costs). Shares the compiled feasibility report and resource
    tensors; only the cost matrix is built fresh.
    """
    compilation = compile_placement(problem)
    dense = DenseCosts.from_matrices(problem, compilation.report, assign,
                                     activation, tie_breaker=tie_breaker)
    state = GreedyState(dense)
    greedy_fill(state, problem.energy_j)
    return assignment_to_solution(problem, state.assignment)


@dataclass
class EpochCompilation:
    """Everything an epoch's policies share, computed once per problem.

    All attributes are lazy: the first consumer pays for a tensor, every
    later consumer reads the cache. The object must be treated as read-only.
    """

    problem: PlacementProblem
    _report: FeasibilityReport | None = field(default=None, repr=False)
    _coefficients: dict = field(default_factory=dict, repr=False)
    _dense: dict = field(default_factory=dict, repr=False)

    @property
    def report(self) -> FeasibilityReport:
        """Feasibility report (latency SLO + profile support + capacity filter)."""
        if self._report is None:
            self._report = filter_feasible_servers(self.problem)
        return self._report

    @property
    def epoch_mean_intensity(self) -> np.ndarray:
        """(S,) epoch-mean (forecast-average) carbon intensities Ī_j."""
        return self.problem.intensity

    @property
    def nearest_feasible_ms(self) -> np.ndarray:
        """(A,) one-way latency to each application's nearest feasible server.

        Delegates to :meth:`PlacementProblem.nearest_feasible_ms` — the single
        cached vector that also backs
        :meth:`PlacementSolution.latency_increase_ms`, so the simulator's
        metrics and per-solution accounting always agree.
        """
        return self.problem.nearest_feasible_ms()

    @property
    def n_nearest_unreachable(self) -> int:
        """Applications with no feasible server at all (``nearest`` is +inf)."""
        return int(np.isinf(self.nearest_feasible_ms).sum())

    def coefficients(self, objective: ObjectiveKind,
                     alpha: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """(assign, activation) objective coefficients, cached per (kind, alpha)."""
        key = (objective, float(alpha))
        if key not in self._coefficients:
            self._coefficients[key] = objective_coefficients(self.problem, objective, alpha)
        return self._coefficients[key]

    def tie_break_for(self, objective: ObjectiveKind) -> np.ndarray:
        """Documented default tie-break matrix for an objective.

        Delegates to :func:`repro.core.objective.tie_break_matrix`, the
        single source of the rule shared with the MILP builder.
        """
        return tie_break_matrix(self.problem, objective)

    def dense(self, objective: ObjectiveKind = ObjectiveKind.CARBON,
              alpha: float = 0.0, manage_power: bool = True) -> DenseCosts:
        """Dense cost tensors for an objective, cached per (kind, alpha, power)."""
        key = (objective, float(alpha), bool(manage_power))
        if key not in self._dense:
            assign, activation = self.coefficients(objective, alpha)
            if not manage_power:
                activation = np.zeros_like(activation)
            self._dense[key] = DenseCosts.from_matrices(
                self.problem, self.report, assign, activation,
                manage_power=manage_power, tie_breaker=self.tie_break_for(objective))
        return self._dense[key]


def compile_placement(problem: PlacementProblem,
                      previous: EpochCompilation | None = None) -> EpochCompilation:
    """The (memoised) compilation of a placement problem.

    Returns the same :class:`EpochCompilation` for repeated calls on the same
    problem instance — this is how the four policies, the solver registry,
    and the simulator's metrics loop end up sharing one set of tensors.

    ``previous`` enables warm-started epoch re-solves
    (:meth:`repro.core.incremental.IncrementalPlacer.resolve_epoch`): when the
    new problem covers the same applications and servers with an unchanged
    latency matrix, the previous epoch's nearest-feasible-server latencies
    are carried over instead of recomputed. Objective coefficients and the
    feasibility report are never carried over — intensities and capacities
    move between epochs.
    """
    compilation = getattr(problem, "_compilation", None)
    if compilation is None:
        compilation = EpochCompilation(problem=problem)
        if previous is not None and _layout_unchanged(problem, previous.problem):
            problem._nearest_feasible = previous.problem._nearest_feasible
        problem._compilation = compilation
    return compilation


def clear_compilation(problem: PlacementProblem) -> None:
    """Drop every cache derived from a problem's arrays.

    Call after mutating a problem in place (so nothing solves against stale
    tensors), or to time an uncompiled solve fairly. Clears the memoised
    :class:`EpochCompilation` *and* the problem-level caches it builds on
    (feasibility mask, dense resource tensors, id index maps).
    """
    problem._compilation = None
    problem._feasible_mask = None
    problem._nearest_feasible = None
    problem._dense_resources = None
    problem._app_index_map = None
    problem._server_index_map = None


def _layout_unchanged(new: PlacementProblem, old: PlacementProblem) -> bool:
    """Same apps, servers, SLOs, and latencies — the nearest-server geometry."""
    if new.n_applications != old.n_applications or new.n_servers != old.n_servers:
        return False
    if any(a is not b for a, b in zip(new.applications, old.applications)):
        return False
    if any(a is not b for a, b in zip(new.servers, old.servers)):
        return False
    return np.array_equal(new.latency_ms, old.latency_ms) and \
        np.array_equal(new.supported, old.supported)


# -- scenario-lifetime compilation ---------------------------------------------
#
# The per-epoch tier above rebuilds nothing *within* an epoch, but until this
# tier existed every epoch still paid for a full problem construction — even
# though the latency geometry, fleet capacities, device-class energy/demand
# blocks, and feasibility masks are invariant for a scenario's lifetime and
# only carbon intensities, arrivals, and allocation state move between epochs.
#
# A :class:`ScenarioCompilation` hoists everything epoch-invariant to scenario
# scope, keyed by **application class** — the (source site, workload, request
# rate, latency SLO, duration) tuple that determines every per-pair quantity of
# an application. Arrivals are drawn from a small class population (sites x
# workloads for the CDN scenarios), so each class's latency row, support row,
# energy row, demand row, SLO-feasibility row, nearest-feasible latency, dense
# demand row, and baseline capacity-fit row are computed exactly once per
# scenario and every epoch's tensors are assembled by row *gather* instead of
# rebuild. The per-epoch remainder is the :class:`EpochDelta`: the epoch-mean
# intensity vector (one memoised forecast integral per zone), the arrival list
# with its class indices, and the warm-start allocation state (live capacities
# and power when the fleet is not pristine).
#
# **Bit-identity contract.** For every delta, the assembled
# :class:`PlacementProblem` tensors, the :class:`EpochCompilation` report and
# dense tensors, and therefore every placement and experiment artifact are
# byte-identical to a cold :meth:`PlacementProblem.build` of the same epoch:
# each cached row is produced by the same float expressions, in the same
# association order, as the cold builder's block fills (see the row builders
# below, each annotated with the cold expression it mirrors). A CI job byte-
# diffs fig11 artifacts with the tier force-disabled versus enabled
# (:func:`scenario_tier_enabled`), and the benchmark suite asserts the same
# identity per epoch.
#
# **Cache keys and invalidation.** Scenario compilations are memoised on the
# substrate identity — the (latency matrix, carbon service) object pair plus
# element-wise server identity — which is exactly what the CDN scenario-
# substrate cache (:func:`repro.simulator.cdn.scenario_substrate`) shares
# between scenario variants, so a latency-limit sweep reuses one scenario tier
# across all its variants. Epoch compilations are memoised on (substrate,
# epoch delta) for pristine deltas, so re-running the same scenario skips
# assembly entirely. Static rows never go stale (device catalogues and the
# latency matrix are immutable); allocation state is *not* cached — non-
# pristine deltas read live capacities and recompute the capacity-dependent
# report per epoch.


#: Environment kill-switch for the scenario tier (used by the delta-vs-cold
#: determinism CI job): set to ``1`` to force every consumer onto the cold
#: per-epoch rebuild path.
SCENARIO_TIER_ENV: str = "CARBON_EDGE_DISABLE_SCENARIO_TIER"


def scenario_tier_enabled() -> bool:
    """Whether consumers should use the scenario-lifetime compilation tier."""
    return os.environ.get(SCENARIO_TIER_ENV, "").strip().lower() not in (
        "1", "true", "yes", "on")


#: Per-scenario class caches are dropped wholesale beyond this many distinct
#: application classes (unbounded only for adversarial streams of distinct
#: request rates; catalogue workloads stay tiny). The same limit caps each of
#: the keyed row caches (blocks / energy / dense / fit rows) individually, as
#: an LRU instead of a wholesale drop. Overridable per process through
#: :data:`CLASS_CACHE_ENV` — a 10k-site planetary run wants it raised (so one
#: epoch's classes stay resident), a memory-tight soak wants it lowered.
_CLASS_CACHE_LIMIT: int = 4096

#: Environment override for :data:`_CLASS_CACHE_LIMIT` (positive integer).
CLASS_CACHE_ENV: str = "CARBON_EDGE_CLASS_CACHE_LIMIT"


def class_cache_limit() -> int:
    """The effective per-scenario class-cache bound (env override or default)."""
    raw = os.environ.get(CLASS_CACHE_ENV, "").strip()
    if not raw:
        return _CLASS_CACHE_LIMIT
    try:
        limit = int(raw)
    except ValueError:
        return _CLASS_CACHE_LIMIT
    return limit if limit > 0 else _CLASS_CACHE_LIMIT


#: Pristine epoch compilations memoised per scenario (LRU).
_EPOCH_MEMO_LIMIT: int = 64


@dataclass(frozen=True)
class EpochDelta:
    """Everything that changes between two epochs of one scenario.

    Attributes
    ----------
    hour / horizon_hours / use_forecast:
        The epoch's position and horizon (inputs of the intensity integral).
    applications:
        The epoch's arrival batch.
    class_indices:
        (A,) index of each application's class in the scenario's class table
        (valid for the table generation stamped in ``class_generation``).
    intensity:
        (S,) epoch-mean carbon intensities Ī_j (the forecast integral,
        computed once per zone and gathered per server).
    capacities / current_power:
        Warm-start allocation state: per-server available capacity and power
        at the epoch's start. For a pristine fleet these are the scenario
        baselines (all capacity free, every server on).
    baseline_capacity:
        Capacities equal the scenario baseline (enables the cached
        capacity-fit report rows).
    pristine:
        Fully pristine fleet state (baseline capacity *and* every server on)
        — the precondition for memoising the assembled compilation.
    """

    hour: int
    horizon_hours: float
    use_forecast: bool
    #: The epoch's arrivals: a tuple of ``Application`` objects (object path)
    #: or a columnar :class:`~repro.workloads.generator.ApplicationBatch`.
    applications: "tuple | ApplicationBatch"
    class_indices: np.ndarray
    intensity: np.ndarray
    capacities: tuple
    current_power: np.ndarray
    baseline_capacity: bool
    pristine: bool
    #: Generation of the scenario's class table these indices point into
    #: (the table is dropped wholesale past its cache limit; a delta held
    #: across such a trim must have its indices re-derived, not trusted).
    class_generation: int = 0

    def memo_key(self) -> tuple | None:
        """Hashable identity of a pristine delta (``None`` when not memoisable)."""
        if not self.pristine:
            return None
        apps = self.applications
        if isinstance(apps, ApplicationBatch):
            # Formulaic batch ids are fully determined by (interval, count) —
            # no per-app tuple needed; the class indices capture the content.
            ids: tuple = (apps.interval_index, len(apps)) \
                if apps.explicit_ids is None else apps.explicit_ids
            return ("columnar", self.hour, float(self.horizon_hours),
                    self.use_forecast, ids, self.class_indices.tobytes())
        return (self.hour, float(self.horizon_hours), self.use_forecast,
                tuple(app.app_id for app in apps),
                tuple(int(k) for k in self.class_indices))


@dataclass
class _WorkloadBlock:
    """Static per-(workload, request rate) rows over the server axis."""

    #: (S,) bool — servers with a usable profile for the workload.
    supported: np.ndarray
    #: (S,) shared demand vectors (``_EMPTY_DEMAND`` where unsupported).
    demand_row: list
    #: Union of the demand vectors' resource keys.
    demand_keys: frozenset
    #: (cols, profile, demand vec) per supported device-class group.
    groups: list


class ScenarioCompilation:
    """The scenario-lifetime tier: static substrate tensors plus class rows.

    Built once per (servers, latency matrix, carbon service) substrate —
    normally through :func:`compile_scenario` — and reused across every epoch
    (and every scenario variant sharing the substrate). See the section
    comment above for the architecture and the bit-identity contract.
    """

    def __init__(self, servers: Sequence["EdgeServer"], latency: "LatencyMatrix",
                 carbon: "CarbonIntensityService") -> None:
        self.servers: list = list(servers)
        if not self.servers:
            raise ValueError("cannot compile a scenario with no servers")
        self.latency = latency
        self.carbon = carbon
        #: Latency-matrix column of each server's site.
        self.server_cols = np.asarray(
            [latency.index_of(srv.site) for srv in self.servers], dtype=np.intp)
        self.base_power_w = np.array([srv.base_power_w for srv in self.servers])
        self._zones = [srv.zone_id for srv in self.servers]
        # Device-class groups in first-occurrence order, exactly as the cold
        # builder's server_classes dict iterates them.
        classes: dict[tuple, list[int]] = {}
        for j, srv in enumerate(self.servers):
            accel = srv.accelerator.name if srv.accelerator is not None else None
            classes.setdefault((accel, srv.cpu.name), []).append(j)
        self._server_classes = {key: np.asarray(cols, dtype=np.intp)
                                for key, cols in classes.items()}
        # Lazily captured pristine-fleet baselines.
        self._baseline_capacities: list | None = None
        self._baseline_capacity_dense: dict[tuple, np.ndarray] = {}
        # Class tables (see _class_of) and derived row caches. The keyed row
        # caches are individually LRU-bounded at class_cache_limit(); the
        # positional class tables are append-only (indices reference
        # positions) and dropped wholesale by _trim_class_caches instead.
        self._class_index: dict[tuple, int] = {}
        self._class_keys: list[tuple] = []
        self._lat_rows: list[np.ndarray] = []
        self._feas_rows: list[np.ndarray] = []
        self._near: list[float] = []
        self._blocks: OrderedDict[tuple, _WorkloadBlock] = OrderedDict()
        self._energy_rows: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._dense_rows: OrderedDict[tuple, np.ndarray] = OrderedDict()
        self._fits_rows: OrderedDict[tuple, np.ndarray] = OrderedDict()
        #: Keyed rows evicted by the LRU caps (telemetry; see cache_stats).
        self._row_evictions: int = 0
        self._epoch_memo: OrderedDict[tuple, EpochCompilation] = OrderedDict()
        #: Region-restricted child compilations (see :meth:`region_slice`).
        self._region_memo: dict[tuple, "ScenarioCompilation"] = {}
        #: Bumped whenever the class table is dropped wholesale, so deltas
        #: built against an older table are detected and re-derived.
        self._class_generation: int = 0

    # -- substrate identity ------------------------------------------------------

    def matches(self, servers: Sequence["EdgeServer"],
                latency: "LatencyMatrix | None" = None,
                carbon: "CarbonIntensityService | None" = None) -> bool:
        """Whether this compilation was built over exactly these objects."""
        if latency is not None and latency is not self.latency:
            return False
        if carbon is not None and carbon is not self.carbon:
            return False
        return len(servers) == len(self.servers) and \
            all(a is b for a, b in zip(servers, self.servers))

    # -- region slicing (the hierarchical tier's memory bound) -------------------

    def region_slice(self, cols: Sequence[int]) -> "ScenarioCompilation":
        """Child compilation restricted to a subset of server columns.

        The hierarchical tier (:mod:`repro.solver.hierarchy`) solves each
        region's refinement sub-problem against one of these views: the child
        compiles class rows over only the region's servers, so peak resident
        tensor memory during refinement is bounded by the largest region
        rather than the fleet. Children share the parent's latency matrix and
        carbon service objects (gathers index the same arrays; nothing is
        copied per region beyond the class rows the region actually uses) and
        are memoised per column set, so every epoch of a scenario reuses one
        child per region.
        """
        key = tuple(int(j) for j in cols)
        child = self._region_memo.get(key)
        if child is None:
            if not key:
                raise ValueError("region_slice requires at least one server column")
            child = ScenarioCompilation([self.servers[j] for j in key],
                                        self.latency, self.carbon)
            self._region_memo[key] = child
        return child

    # -- static row builders (each mirrors one cold-build expression) ------------

    def _lru_get(self, cache: OrderedDict, key: tuple):
        """Fetch from a keyed row cache, refreshing the entry's recency."""
        value = cache.get(key)
        if value is not None:
            cache.move_to_end(key)
        return value

    def _lru_put(self, cache: OrderedDict, key: tuple, value) -> None:
        """Insert into a keyed row cache, evicting the oldest rows past the
        class-cache limit (a memo, not state — recomputation is bit-identical)."""
        cache[key] = value
        limit = class_cache_limit()
        while len(cache) > limit:
            cache.popitem(last=False)
            self._row_evictions += 1

    def _block(self, workload: str, rate: float) -> _WorkloadBlock:
        """Support/demand rows for one (workload, request rate) pair."""
        key = (workload, rate)
        block = self._lru_get(self._blocks, key)
        if block is None:
            s = len(self.servers)
            supported = np.zeros(s, dtype=bool)
            demand_row: list = [None] * s
            demand_keys: set[str] = set()
            groups: list = []
            for (accel, cpu), cols in self._server_classes.items():
                profile = _resolve_profile(workload, accel, cpu)
                if profile is None:
                    continue
                supported[cols] = True
                vec = _demand_for(workload, accel, cpu, rate, profile)
                demand_keys.update(vec.keys())
                groups.append((cols, profile, vec))
                for j in cols:
                    demand_row[j] = vec
            block = _WorkloadBlock(
                supported=supported,
                demand_row=[v if v is not None else _EMPTY_DEMAND for v in demand_row],
                demand_keys=frozenset(demand_keys),
                groups=groups)
            self._lru_put(self._blocks, key, block)
        return block

    def _energy_row(self, workload: str, rate: float, horizon_hours: float) -> np.ndarray:
        """(S,) dynamic energy E_ij of one class over the placement horizon.

        Mirrors the cold builder's
        ``profile.energy_per_request_j * rates * 3600.0 * horizon_hours``
        block fill — same factors, same association order, so the values are
        bit-identical.
        """
        key = (workload, rate, float(horizon_hours))
        row = self._lru_get(self._energy_rows, key)
        if row is None:
            row = np.zeros(len(self.servers))
            for cols, profile, _ in self._block(workload, rate).groups:
                per_app = profile.energy_per_request_j * np.full(1, rate) \
                    * 3600.0 * horizon_hours
                row[cols] = per_app[0]
            self._lru_put(self._energy_rows, key, row)
        return row

    def _dense_row(self, workload: str, rate: float, keys: tuple) -> np.ndarray:
        """(S, K) dense demand row of one class over an epoch's resource keys."""
        cache_key = (workload, rate, keys)
        row = self._lru_get(self._dense_rows, cache_key)
        if row is None:
            row = np.zeros((len(self.servers), len(keys)))
            for cols, _, vec in self._block(workload, rate).groups:
                row[cols] = np.array([vec.get(key) for key in keys])
            self._lru_put(self._dense_rows, cache_key, row)
        return row

    def _fits_row(self, workload: str, rate: float, keys: tuple) -> np.ndarray:
        """(S,) standalone capacity fit of one class at the *baseline* capacity.

        Mirrors ``filter_feasible_servers``'s
        ``np.all(demand <= capacity[None] + 1e-9, axis=-1)`` — only valid
        while the fleet holds no allocations.
        """
        cache_key = (workload, rate, keys)
        row = self._lru_get(self._fits_rows, cache_key)
        if row is None:
            capacity = self._capacity_dense(keys)
            row = np.all(self._dense_row(workload, rate, keys) <= capacity + 1e-9,
                         axis=-1)
            self._lru_put(self._fits_rows, cache_key, row)
        return row

    def _capacity_dense(self, keys: tuple, capacities: list | None = None) -> np.ndarray:
        """(S, K) capacity tensor over ``keys`` (baseline cached, live computed).

        Mirrors ``PlacementProblem._dense_frame`` including the reshape that
        keeps a zero-width resource axis well-formed.
        """
        if capacities is None:
            cached = self._baseline_capacity_dense.get(keys)
            if cached is not None:
                return cached
            capacities = self._baseline()
            dense = np.array([[cap.get(key) for key in keys] for cap in capacities],
                             dtype=float).reshape(len(self.servers), len(keys))
            self._baseline_capacity_dense[keys] = dense
            return dense
        return np.array([[cap.get(key) for key in keys] for cap in capacities],
                        dtype=float).reshape(len(self.servers), len(keys))

    def _baseline(self) -> list:
        """Pristine-fleet available capacities.

        Derived from ``total_capacity`` (not a live ``available_capacity``
        snapshot) so the baseline is correct no matter what allocation state
        the fleet is in when first consulted. The expression mirrors what
        ``EdgeServer.available_capacity`` evaluates to on an unallocated
        server — ``total - zeros(total.keys())`` — so the values are
        bit-identical to a cold build over a pristine fleet.
        """
        if self._baseline_capacities is None:
            baseline = []
            for srv in self.servers:
                total = srv.total_capacity
                baseline.append(total - ResourceVector.zeros(tuple(total.keys())))
            self._baseline_capacities = baseline
        return self._baseline_capacities

    def _class_of(self, app: "Application") -> int:
        """Index of an application's class, registering it on first sight."""
        return self._register_class(app.source_site, app.workload,
                                    app.request_rate_rps, app.latency_slo_ms,
                                    app.duration_hours)

    def _register_class(self, source_site: str, workload: str, rate: float,
                        slo_ms: float, duration_hours: float) -> int:
        """Index of one (site, workload, rate, slo, duration) class,
        registering its static rows on first sight."""
        key = (source_site, workload, rate, slo_ms, duration_hours)
        k = self._class_index.get(key)
        if k is None:
            block = self._block(workload, rate)
            # Mirrors the cold builder's latency gather + INFEASIBLE fill and
            # the feasible_mask / nearest_feasible_ms expressions row-wise.
            lat = self.latency.matrix_ms[
                self.latency.index_of(source_site), self.server_cols].astype(float)
            lat[~block.supported] = INFEASIBLE_LATENCY_MS
            feas = (2.0 * lat <= slo_ms + 1e-9) & block.supported
            near = float(np.where(feas, lat, np.inf).min())
            k = len(self._class_keys)
            self._class_index[key] = k
            self._class_keys.append((source_site, workload, rate, slo_ms))
            self._lat_rows.append(lat)
            self._feas_rows.append(feas)
            self._near.append(near)
        return k

    def _batch_class_indices(self, batch: ApplicationBatch) -> np.ndarray:
        """(A,) scenario class indices of a columnar batch's applications.

        Registers the batch's unique classes in **first-arrival order** — the
        order a per-application loop over the batch would first encounter
        them — so the resulting indices (and every downstream float
        accumulation keyed on them) are bit-identical to the object path's.
        One loop over C unique classes replaces A per-app lookups.
        """
        order = np.argsort(batch.class_first_occurrence(), kind="stable")
        scen = np.empty(batch.n_classes, dtype=np.intp)
        sites, workloads = batch.site_names, batch.workload_names
        for c in order:
            c = int(c)
            scen[c] = self._register_class(
                sites[int(batch.class_site_idx[c])],
                workloads[int(batch.class_workload_idx[c])],
                float(batch.class_rate_rps[c]),
                float(batch.class_slo_ms[c]),
                float(batch.class_duration_h[c]))
        return scen[batch.class_idx]

    def _trim_class_caches(self) -> None:
        """Wholesale drop of the class tables past the cache limit (a memo,
        not state — recomputation is cheap and bit-identical)."""
        if len(self._class_index) < class_cache_limit():
            return
        self._class_generation += 1
        self._class_index.clear()
        self._class_keys.clear()
        self._lat_rows.clear()
        self._feas_rows.clear()
        self._near.clear()
        self._dense_rows.clear()
        self._fits_rows.clear()
        self._energy_rows.clear()
        self._blocks.clear()
        self._epoch_memo.clear()

    def cache_stats(self) -> dict:
        """Size telemetry for the per-class caches (diagnostics, benches).

        Kept off the experiment artifacts on purpose: cache occupancy is
        per-process (it differs across ``--workers`` splits), so recording it
        there would break the byte-identity contract.
        """
        row_bytes = sum(r.nbytes for r in self._lat_rows)
        row_bytes += sum(r.nbytes for r in self._feas_rows)
        row_bytes += sum(r.nbytes for r in self._energy_rows.values())
        row_bytes += sum(r.nbytes for r in self._dense_rows.values())
        row_bytes += sum(r.nbytes for r in self._fits_rows.values())
        return {
            "n_classes": len(self._class_keys),
            "n_blocks": len(self._blocks),
            "n_energy_rows": len(self._energy_rows),
            "n_dense_rows": len(self._dense_rows),
            "n_fits_rows": len(self._fits_rows),
            "row_bytes": int(row_bytes),
            "row_evictions": int(self._row_evictions),
            "class_generation": int(self._class_generation),
            "cache_limit": class_cache_limit(),
        }

    # -- the per-epoch delta -----------------------------------------------------

    def epoch_delta(self, applications: "Sequence[Application] | ApplicationBatch",
                    hour: int, horizon_hours: float = 1.0,
                    use_forecast: bool = True) -> EpochDelta:
        """Capture one epoch's moving parts against this scenario's substrate.

        Columnar batches take the class-table fast path: classes register per
        unique class (in first-arrival order, so the indices are bit-identical
        to the per-object walk) and the per-app index vector is one gather.
        ``CARBON_EDGE_DISABLE_COLUMNAR`` forces the per-object path.
        """
        batch = applications if isinstance(applications, ApplicationBatch) else None
        if batch is not None and not columnar_enabled():
            applications, batch = tuple(batch.applications), None
        if batch is None and not isinstance(applications, tuple):
            applications = tuple(applications)
        if len(applications) == 0:
            raise ValueError("cannot build a placement problem with no applications")
        self._trim_class_caches()
        if batch is not None:
            class_indices = self._batch_class_indices(batch)
        else:
            class_indices = np.fromiter(
                (self._class_of(app) for app in applications),
                dtype=np.intp, count=len(applications))
        unallocated = all(not srv.allocations for srv in self.servers)
        all_on = all(srv.is_on for srv in self.servers)
        if unallocated:
            capacities = tuple(self._baseline())
        else:
            capacities = tuple(srv.available_capacity for srv in self.servers)
        current_power = np.array([1.0 if srv.is_on else 0.0 for srv in self.servers])
        if use_forecast:
            horizon = int(np.ceil(horizon_hours))
            by_zone = {zone: self.carbon.forecast_mean(zone, hour, horizon)
                       for zone in dict.fromkeys(self._zones)}
        else:
            by_zone = {zone: self.carbon.current_intensity(zone, hour)
                       for zone in dict.fromkeys(self._zones)}
        intensity = np.array([by_zone[zone] for zone in self._zones])
        return EpochDelta(hour=int(hour), horizon_hours=float(horizon_hours),
                          use_forecast=use_forecast, applications=applications,
                          class_indices=class_indices, intensity=intensity,
                          capacities=capacities, current_power=current_power,
                          baseline_capacity=unallocated,
                          pristine=unallocated and all_on,
                          class_generation=self._class_generation)

    # -- assembly ----------------------------------------------------------------

    def compile_epoch(self, delta: EpochDelta) -> EpochCompilation:
        """Assemble (or recall) the epoch compilation for one delta.

        Pristine deltas are memoised on (substrate, delta), so re-running an
        identical epoch — the same arrivals against the same pristine fleet —
        returns the previously assembled problem and all of its lazily built
        tensors.
        """
        if delta.class_generation != self._class_generation:
            # The class table was dropped (cache-limit trim) after this delta
            # was captured: its indices point into a table that no longer
            # exists. Re-derive them against the current table rather than
            # gathering silently wrong rows.
            delta = self.epoch_delta(delta.applications, delta.hour,
                                     delta.horizon_hours, delta.use_forecast)
        key = delta.memo_key()
        if key is not None:
            memoised = self._epoch_memo.get(key)
            if memoised is not None:
                self._epoch_memo.move_to_end(key)
                return memoised
        problem = self._assemble_problem(delta)
        compilation = EpochCompilation(problem=problem)
        if delta.baseline_capacity:
            compilation._report = self._assemble_report(problem, delta)
        problem._compilation = compilation
        if key is not None:
            self._epoch_memo[key] = compilation
            while len(self._epoch_memo) > _EPOCH_MEMO_LIMIT:
                self._epoch_memo.popitem(last=False)
        return compilation

    def build_problem(self, applications: Sequence["Application"], hour: int,
                      horizon_hours: float = 1.0,
                      use_forecast: bool = True) -> PlacementProblem:
        """The substrate-backed fast path behind :meth:`PlacementProblem.build`."""
        delta = self.epoch_delta(applications, hour, horizon_hours, use_forecast)
        return self.compile_epoch(delta).problem

    def _assemble_problem(self, delta: EpochDelta) -> PlacementProblem:
        """Gather one epoch's problem tensors from the class rows.

        Columnar deltas build each tensor once per *unique class* and expand
        to per-application rows with a single fancy-index gather — elementwise
        the same rows the per-app stacks below copy, so both paths are
        bit-identical (the gather and the stack both materialise fresh copies
        of the same cached class rows).
        """
        ensure_dense_cell_budget(len(delta.applications), len(self.servers),
                                 context="ScenarioCompilation epoch assembly")
        idx = delta.class_indices
        batch = delta.applications \
            if isinstance(delta.applications, ApplicationBatch) else None
        if batch is not None:
            uniq, inverse = np.unique(idx, return_inverse=True)
            uniq_keys = [self._class_keys[k] for k in uniq]
            latency_ms = np.stack([self._lat_rows[k] for k in uniq])[inverse]
            supported = np.stack(
                [self._block(w, r).supported for _, w, r, _ in uniq_keys])[inverse]
            energy_j = np.stack(
                [self._energy_row(w, r, delta.horizon_hours)
                 for _, w, r, _ in uniq_keys])[inverse]
            uniq_demand_rows = [self._block(w, r).demand_row
                                for _, w, r, _ in uniq_keys]
            demands = [uniq_demand_rows[c] for c in inverse]
            applications: "Sequence[Application]" = LazyApplications(batch)
            epoch_key_source = uniq_keys
        else:
            class_keys = [self._class_keys[k] for k in idx]
            latency_ms = np.stack([self._lat_rows[k] for k in idx])
            supported = np.stack(
                [self._block(w, r).supported for _, w, r, _ in class_keys])
            energy_j = np.stack([self._energy_row(w, r, delta.horizon_hours)
                                 for _, w, r, _ in class_keys])
            demands = [self._block(w, r).demand_row for _, w, r, _ in class_keys]
            applications = list(delta.applications)
            epoch_key_source = class_keys
        problem = PlacementProblem(
            applications=applications,
            servers=list(self.servers),
            latency_ms=latency_ms,
            energy_j=energy_j,
            demands=demands,
            intensity=delta.intensity,
            capacities=list(delta.capacities),
            base_power_w=self.base_power_w.copy(),
            current_power=delta.current_power,
            horizon_hours=delta.horizon_hours,
            supported=supported,
        )
        # Seed every lazy problem cache the cold path would derive from the
        # same rows: the SLO+support mask, the nearest-feasible latencies, and
        # the dense resource tensors.
        keys = self._epoch_keys(epoch_key_source)
        if batch is not None:
            problem._feasible_mask = np.stack(
                [self._feas_rows[k] for k in uniq])[inverse]
            problem._nearest_feasible = np.array(
                [self._near[k] for k in uniq])[inverse]
            demand_dense = np.stack(
                [self._dense_row(w, r, keys) for _, w, r, _ in uniq_keys])[inverse]
        else:
            problem._feasible_mask = np.stack([self._feas_rows[k] for k in idx])
            problem._nearest_feasible = np.array([self._near[k] for k in idx])
            demand_dense = np.stack(
                [self._dense_row(w, r, keys) for _, w, r, _ in class_keys])
        if delta.baseline_capacity:
            capacity_dense = self._capacity_dense(keys)
        else:
            capacity_dense = self._capacity_dense(keys, list(delta.capacities))
        problem._dense_resources = (keys, capacity_dense, demand_dense)
        return problem

    def _epoch_keys(self, class_keys: list) -> tuple:
        """Sorted resource keys spanning the baseline capacities and the
        epoch's demand blocks (mirrors ``PlacementProblem._dense_frame``)."""
        key_set: set[str] = set()
        for cap in self._baseline():
            key_set.update(cap.keys())
        for _, workload, rate, _ in class_keys:
            key_set.update(self._block(workload, rate).demand_keys)
        return tuple(sorted(key_set))

    def _assemble_report(self, problem: PlacementProblem,
                         delta: EpochDelta) -> FeasibilityReport:
        """Gather the feasibility report from the cached class + fit rows.

        Only valid at baseline capacity (the fit rows are); non-pristine
        deltas leave the report to the lazy vectorised filter, which reads
        the seeded dense tensors against the live capacities.
        """
        keys, _, _ = problem._dense_resources
        feasible = problem._feasible_mask
        if len(keys):
            if isinstance(delta.applications, ApplicationBatch):
                uniq, inverse = np.unique(delta.class_indices, return_inverse=True)
                fits = np.stack(
                    [self._fits_row(w, r, keys)
                     for _, w, r, _ in (self._class_keys[k] for k in uniq)])[inverse]
            else:
                class_keys = [self._class_keys[k] for k in delta.class_indices]
                fits = np.stack(
                    [self._fits_row(w, r, keys) for _, w, r, _ in class_keys])
            mask = feasible & fits
        else:
            mask = feasible.copy()
        unplaceable = np.flatnonzero(~mask.any(axis=1)).tolist()
        useful = sorted(set(np.flatnonzero(mask.any(axis=0)).tolist()))
        return FeasibilityReport(mask=mask, unplaceable=unplaceable,
                                 useful_servers=useful)


#: Scenario-compilation cache: keyed on the substrate identity — the latency
#: matrix + carbon service objects plus the server objects themselves (so two
#: fleets sharing one latency/carbon pair hold separate entries instead of
#: evicting each other), validated against element-wise server identity on
#: every hit. The cached compilation pins its substrate objects, so the ids
#: in the key can never be recycled while the entry lives. Bounded LRU
#: mirroring the CDN scenario-substrate cache.
_SCENARIO_CACHE: OrderedDict[tuple, ScenarioCompilation] = OrderedDict()
_SCENARIO_CACHE_MAX: int = 8


def compile_scenario(servers: Sequence["EdgeServer"], latency: "LatencyMatrix",
                     carbon: "CarbonIntensityService") -> ScenarioCompilation:
    """The (memoised) scenario-lifetime compilation of one substrate.

    Returns the same :class:`ScenarioCompilation` for repeated calls over the
    same substrate objects — this is how every scenario variant sharing a CDN
    footprint (and every epoch of every simulation over it) ends up sharing
    one set of static tensors and class rows.
    """
    key = (id(latency), id(carbon), tuple(map(id, servers)))
    cached = _SCENARIO_CACHE.get(key)
    if cached is not None and cached.matches(servers, latency, carbon):
        _SCENARIO_CACHE.move_to_end(key)
        return cached
    compilation = ScenarioCompilation(servers, latency, carbon)
    _SCENARIO_CACHE[key] = compilation
    _SCENARIO_CACHE.move_to_end(key)
    while len(_SCENARIO_CACHE) > _SCENARIO_CACHE_MAX:
        _SCENARIO_CACHE.popitem(last=False)
    return compilation


def clear_scenario_compilations() -> None:
    """Drop every cached scenario compilation (and their epoch memos)."""
    _SCENARIO_CACHE.clear()
