"""Scenario compilation: one dense placement kernel shared across all policies.

At CDN scale the same :class:`~repro.core.problem.PlacementProblem` is solved
by four policies per epoch, and before this layer existed each of them
independently re-derived the feasibility report, the objective coefficient
matrices, and the dense cost/demand tensors. An :class:`EpochCompilation`
precomputes all of that exactly once per problem and hands the read-only
results to every consumer — the solver backends (through
:class:`~repro.solver.backend.SolveRequest`), the baseline policies, and the
CDN simulator's metrics loop:

* the feasibility report (latency SLO + profile support + standalone capacity);
* per-objective coefficient matrices (carbon / energy / latency / intensity,
  plus the multi-objective blend), cached by ``(objective, alpha)``;
* :class:`DenseCosts` tensors, cached by ``(objective, alpha, manage_power)``;
* the epoch-mean carbon intensities Ī_j (the problem's ``intensity`` vector);
* each application's nearest-feasible-server latency (the baseline for the
  paper's "increased latency" metric).

**Cache keys and invalidation.** The compilation is memoised on the problem
instance (``compile_placement`` returns the same object for the same
problem). Problems are immutable once built — each simulation epoch
constructs a fresh problem from fleet state, which naturally invalidates
everything. Code that mutates a problem in place (tests, mostly) must call
:func:`clear_compilation` afterwards.

**The one greedy kernel.** :func:`greedy_fill` is the single greedy placement
engine in the tree: most-constrained application first (fewest candidate
servers, larger maximum energy first among equals), each placed at the server
minimising the marginal augmented cost (assignment cost plus the activation
cost of switching a currently-off server on). Tie-breaking is by an epsilon
perturbation of the cost matrix (see :meth:`DenseCosts.from_matrices`):
objective-equal servers are ordered by the tie-break matrix — one-way latency
for the carbon/energy/intensity objectives, operational carbon for the
latency objective — and remaining exact ties resolve to the lowest server
index. This replaces the seed's object-based ``greedy_place`` engine, whose
lexicographic ``(cost, tie)`` rule it reproduces up to that epsilon (a frozen
copy of the old engine served as a parity oracle for one release and has
since been retired).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from typing import Sequence

import numpy as np

from repro.core.filters import FeasibilityReport, filter_feasible_servers
from repro.core.objective import (
    ObjectiveKind,
    apply_tie_break,
    objective_coefficients,
    tie_break_matrix,
)
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.solver.config import MIN_SHARD_APPS

@dataclass
class DenseCosts:
    """Dense numpy view of a placement instance for the vectorised kernels.

    Attributes
    ----------
    keys:
        Resource dimensions, the K axis of ``demand`` / ``capacity``.
    demand:
        (A, S, K) per-pair resource demands (zero outside the support mask).
    capacity:
        (S, K) available capacity per server.
    mask:
        (A, S) candidate mask from the feasibility report.
    cost:
        (A, S) assignment cost including the deterministic epsilon tie-break;
        ``+inf`` outside the mask.
    raw_assign:
        (A, S) un-augmented assignment coefficients (for reporting).
    activation:
        (S,) activation cost of switching a server on (zero when power is
        unmanaged).
    initially_on:
        (S,) bool, servers already on (all True when power is unmanaged).
    """

    keys: list[str]
    demand: np.ndarray
    capacity: np.ndarray
    mask: np.ndarray
    cost: np.ndarray
    raw_assign: np.ndarray
    activation: np.ndarray
    initially_on: np.ndarray

    @classmethod
    def from_matrices(
        cls,
        problem: PlacementProblem,
        report: FeasibilityReport,
        assign: np.ndarray,
        activation: np.ndarray | None = None,
        manage_power: bool = True,
        tie_breaker: np.ndarray | None = None,
    ) -> "DenseCosts":
        """Assemble dense tensors for arbitrary assignment/activation costs.

        The demand and capacity tensors are shared read-only with the problem
        (built once per epoch); only the cost matrix is objective-specific.
        ``tie_breaker`` is an optional (A, S) secondary cost: objective-equal
        candidates order by it through an epsilon perturbation scaled so the
        perturbation never exceeds ``1e-5`` of the largest feasible
        assignment cost. ``None`` disables the perturbation (exact ties then
        resolve to the lowest server index).
        """
        mask = report.mask
        s = problem.n_servers
        if activation is None:
            activation = np.zeros(s)
        cost = cls._tie_broken(assign, mask, tie_breaker)
        initially_on = (problem.current_power > 0.5) if manage_power \
            else np.ones(s, dtype=bool)
        return cls(keys=list(problem.resource_keys()),
                   demand=problem.demand_dense(),
                   capacity=problem.capacity_dense(),
                   mask=mask, cost=cost,
                   raw_assign=assign, activation=np.asarray(activation, dtype=float),
                   initially_on=initially_on)

    @staticmethod
    def _tie_broken(assign: np.ndarray, mask: np.ndarray,
                    tie: np.ndarray | None) -> np.ndarray:
        """Assignment cost with the epsilon tie-break perturbation.

        The rule and epsilon live in :func:`repro.core.objective.apply_tie_break`
        and are shared with the MILP builder, so every backend minimises the
        same augmented objective and cross-backend comparisons are apples to
        apples.
        """
        cost = assign.astype(float, copy=True)
        if tie is not None:
            cost = apply_tie_break(cost, mask, tie)
        return np.where(mask, cost, np.inf)

    def fits(self, i: int, capacity_left: np.ndarray) -> np.ndarray:
        """(S,) bool: servers with room for application ``i`` given remaining capacity."""
        return bool_all(self.demand[i] <= capacity_left + 1e-9)


def bool_all(fits_per_key: np.ndarray) -> np.ndarray:
    """All-dimensions reduction that tolerates a zero-width resource axis."""
    if fits_per_key.shape[-1] == 0:
        return np.ones(fits_per_key.shape[:-1], dtype=bool)
    return np.all(fits_per_key, axis=-1)


class GreedyState:
    """Mutable assignment state shared by the construction and search phases."""

    def __init__(self, dense: DenseCosts) -> None:
        self.dense = dense
        n_apps, n_servers = dense.mask.shape
        self.assignment = np.full(n_apps, -1, dtype=int)
        self.capacity_left = dense.capacity.copy()
        self.served = np.zeros(n_servers, dtype=int)

    def clone(self) -> "GreedyState":
        """Independent copy of the mutable state over the same shared tensors.

        Shard workers solve against clones so concurrent shards never mutate
        the shared state; the reconciliation pass replays their placements
        into the original afterwards.
        """
        other = GreedyState.__new__(GreedyState)
        other.dense = self.dense
        other.assignment = self.assignment.copy()
        other.capacity_left = self.capacity_left.copy()
        other.served = self.served.copy()
        return other

    def would_activate(self) -> np.ndarray:
        """(S,) bool: servers an assignment would newly switch on right now."""
        return (self.served == 0) & ~self.dense.initially_on

    def place(self, i: int, j: int) -> None:
        """Commit application ``i`` to server ``j``."""
        self.assignment[i] = j
        self.capacity_left[j] -= self.dense.demand[i, j]
        self.served[j] += 1

    def move(self, i: int, j0: int, j1: int) -> None:
        """Relocate application ``i`` from server ``j0`` to ``j1``."""
        self.capacity_left[j0] += self.dense.demand[i, j0]
        self.served[j0] -= 1
        self.place(i, j1)


def _pending_order(state: GreedyState, energy_j: np.ndarray,
                   apps: Sequence[int] | None = None) -> list[int]:
    """Still-unassigned applications in the kernel's processing order.

    Most-constrained first: fewest candidate servers, then larger maximum
    energy among equals; the stable sort resolves remaining ties by
    application index. Restricting to ``apps`` yields the same *relative*
    order as the full sort (stability), which is what makes per-shard
    processing order-compatible with the serial kernel. Implemented as a
    stable ``np.lexsort`` over the same keys the original per-application
    tuple sort compared, so the order is unchanged.
    """
    dense = state.dense
    candidates = range(len(state.assignment)) if apps is None else apps
    pending = [int(i) for i in candidates if state.assignment[i] < 0]
    if len(pending) <= 1:
        return pending
    idx = np.asarray(pending, dtype=int)
    counts = dense.mask[idx].sum(axis=1)
    max_energy = energy_j[idx].max(axis=1, initial=0.0)
    return [pending[k] for k in np.lexsort((-max_energy, counts))]


def greedy_fill(state: GreedyState, energy_j: np.ndarray,
                apps: Sequence[int] | None = None) -> None:
    """THE greedy placement kernel (every policy and backend routes here).

    Places each still-unassigned application at its cheapest marginal-cost
    server: most-constrained application first (fewest candidates, then
    larger maximum energy so heavy applications grab green capacity before it
    fills up), marginal cost = tie-broken assignment cost plus the activation
    cost when the assignment would switch the server on. ``np.argmin`` picks
    the lowest server index among exact ties.

    ``apps`` restricts the fill to a subset of applications (the intra-epoch
    shard path); ``None`` processes every unassigned application.

    An application is only ever placed at a *finite* marginal cost: when every
    feasible candidate costs ``+inf`` (possible only for hand-built cost
    matrices — the compiled objective coefficients are finite inside the
    mask), the application stays unplaced instead of landing on ``argmin``'s
    arbitrary index-0 tie, which could fall outside the candidate mask.
    """
    dense = state.dense
    for i in _pending_order(state, energy_j, apps):
        feasible = dense.mask[i] & dense.fits(i, state.capacity_left)
        if not feasible.any():
            continue
        marginal = dense.cost[i] + dense.activation * state.would_activate()
        marginal = np.where(feasible, marginal, np.inf)
        j = int(np.argmin(marginal))
        if np.isfinite(marginal[j]):
            state.place(i, j)


# -- intra-epoch sharding ------------------------------------------------------
#
# The sharded kernel partitions the compiled epoch tensors along the
# application axis and solves independent shards on a worker pool, with a
# determinism contract: for every shard count the merged solution — and the
# full GreedyState (assignment, remaining capacity, served counts, down to
# float arithmetic order) — is bit-identical to the serial kernel's. The
# contract is proof-based rather than hopeful: shards only ever commit
# decisions that are provably identical to the serial interleaving's, and
# anything unprovable is re-derived by the exact serial step during
# reconciliation (ultimately falling back to the serial kernel wholesale).
#
# Two state channels couple applications in ``greedy_fill``:
#
# * capacity  — a placement shrinks ``capacity_left`` on its server, which can
#   flip a later application's ``fits`` there; capacity is *monotone*: it only
#   ever shrinks during a fill.
# * activation — the first placement on an initially-off server zeroes its
#   ``would_activate`` term, changing later marginal costs on that server.
#
# **Speculative mode** (the production CDN path) applies whenever the
# activation channel is provably cold — every server is initially on, already
# serving, or carries a zero activation cost — which makes each application's
# marginal-cost row exactly its static ``dense.cost`` row at every point of
# the fill. Shards then compute, for their slice of the application axis in
# one batched row-argmin, the *speculative winner*: the globally cheapest
# masked candidate, ignoring capacity entirely. The certificate is that no
# better candidate exists at all: the serial kernel minimises the same cost
# row over a *subset* of the mask (the candidates that fit at the
# application's turn), so whenever the speculative winner itself fits at that
# turn it IS the serial argmin — same minimum, same lowest-index tie. The
# serial-order reconciliation replay therefore only has to re-check the
# winner against the evolving shared capacity — an O(K) scalar test —
# committing it when it fits and re-running the exact serial step for that
# application when it does not (or when the row had no finite candidate).
# Replay applies placements through the same ``place()`` calls in the same
# order as the serial kernel, so the shared state reproduces the serial
# float arithmetic byte for byte. NOTE for maintainers: the per-application
# revalidation is load-bearing — the speculation never looked at capacity,
# so skipping it for any "known-fitting" winner breaks the contract.
#
# **Component mode** handles live activation coupling. A server is **hot**
# when a coupling can actually fire during this fill: *contended* (the summed
# demand of every pending application that could choose it exceeds its
# remaining capacity, less a float-drift safety slack) or
# *activation-coupled* (initially off, nonzero activation cost, not yet
# serving). On a non-hot server, ``fits`` holds for every interested
# application no matter which subset places there, and the activation term is
# identically zero — placements there are invisible to every other
# application. An application touching no hot server is **free** (a pure row
# argmin, order-independent); coupled applications group into connected
# components over shared hot servers, which touch disjoint hot-server sets by
# construction and therefore evolve their hot state exactly as in the serial
# interleaving while running on different shards. Component mode is first a
# correctness-preserving degradation path: free chunks vectorise (and release
# the GIL), but coupled bins run the per-application Python loop under the
# GIL, so heavily coupled epochs approach serial speed plus the planning
# overhead rather than a real multi-core win.


@dataclass
class ShardPlan:
    """One epoch's provably-equivalent partition of the pending applications.

    Attributes
    ----------
    mode:
        ``"speculate"`` (cold activation channel: batched speculative choices
        plus an O(K)-per-application validation replay) or ``"components"``
        (live activation coupling: free chunks plus connected-component bins).
    n_shards:
        Requested shard count (worker-pool width).
    order:
        Every pending application in the serial kernel's processing order —
        the replay order of the reconciliation pass.
    free_chunks:
        Per-shard slices of the application axis solved as one batched
        operation each (all pending applications in speculative mode, the
        provably order-independent ones in component mode).
    bins:
        Per-shard groups of coupled applications (whole connected components,
        longest-processing-time balanced), each in serial processing order.
        Empty in speculative mode.
    hot:
        (S,) bool — servers with provable capacity or activation coupling.
    """

    mode: str
    n_shards: int
    order: np.ndarray
    free_chunks: list[np.ndarray]
    bins: list[np.ndarray]
    hot: np.ndarray

    @property
    def n_pending(self) -> int:
        return len(self.order)

    @property
    def n_free(self) -> int:
        return sum(len(c) for c in self.free_chunks)

    @property
    def n_coupled(self) -> int:
        return sum(len(b) for b in self.bins)

    @property
    def n_tasks(self) -> int:
        return len(self.free_chunks) + len(self.bins)

    @property
    def parallel_fraction(self) -> float:
        """Share of pending applications outside the largest single task."""
        if not self.n_pending:
            return 0.0
        largest = max((len(b) for b in self.bins), default=0)
        largest = max(largest, max((len(c) for c in self.free_chunks), default=0))
        return 1.0 - largest / self.n_pending

    @property
    def is_parallel(self) -> bool:
        """Whether dispatching this plan beats calling the serial kernel."""
        return self.n_tasks >= 2


def plan_shards(state: GreedyState, energy_j: np.ndarray, n_shards: int,
                min_shard_apps: int = MIN_SHARD_APPS) -> ShardPlan | None:
    """Partition the pending applications into provably-equivalent shards.

    Returns ``None`` when sharding cannot help: fewer than ``min_shard_apps``
    pending applications, or a single shard requested. A returned plan may
    still be degenerate (``is_parallel`` False) when every application
    collapses into one coupled component — callers fall back to the serial
    kernel in both cases.
    """
    if n_shards <= 1:
        return None
    dense = state.dense
    order = np.asarray(_pending_order(state, energy_j), dtype=int)
    if len(order) < min_shard_apps:
        return None

    mask_p = dense.mask[order]                      # (P, S)
    activation_coupled = (dense.activation != 0.0) & ~dense.initially_on \
        & (state.served == 0)

    if not activation_coupled.any():
        # Cold activation channel: marginal costs are constants, so the
        # speculate-and-validate replay is exact for every application —
        # shard the whole pending axis evenly. No contention analysis is
        # needed (capacity conflicts surface as replay revalidations).
        chunks = [c for c in np.array_split(order, n_shards) if len(c)]
        return ShardPlan(mode="speculate", n_shards=n_shards, order=order,
                         free_chunks=chunks, bins=[], hot=activation_coupled)

    # Worst-case demand each server could attract from this fill: the summed
    # demand of every pending application whose candidate set includes it.
    interested = np.einsum("ps,psk->sk", mask_p.astype(float), dense.demand[order])
    # Safety slack: the certificate compares a vectorised sum against what the
    # serial kernel computes by sequential subtraction; the relative term
    # covers any float reassociation drift (conservative by orders of
    # magnitude), the absolute term mirrors the kernel's fits() tolerance.
    slack = 1e-9 + 1e-7 * np.abs(state.capacity_left)
    contended = bool_any(interested > state.capacity_left - slack)
    hot = contended | activation_coupled

    hot_idx = np.nonzero(hot)[0]
    if len(hot_idx):
        touches_hot = mask_p[:, hot_idx].any(axis=1)
    else:
        touches_hot = np.zeros(len(order), dtype=bool)
    free = order[~touches_hot]
    coupled = order[touches_hot]

    free_chunks = [c for c in np.array_split(free, n_shards) if len(c)]
    bins = _bin_components(_coupled_components(mask_p[touches_hot], hot_idx, coupled),
                           n_shards)
    return ShardPlan(mode="components", n_shards=n_shards, order=order,
                     free_chunks=free_chunks, bins=bins, hot=hot)


def bool_any(exceeds_per_key: np.ndarray) -> np.ndarray:
    """Any-dimension reduction that tolerates a zero-width resource axis."""
    if exceeds_per_key.shape[-1] == 0:
        return np.zeros(exceeds_per_key.shape[:-1], dtype=bool)
    return np.any(exceeds_per_key, axis=-1)


def _coupled_components(coupled_mask: np.ndarray, hot_idx: np.ndarray,
                        coupled: np.ndarray) -> list[np.ndarray]:
    """Connected components of coupled applications over shared hot servers.

    Two applications belong to the same component when a chain of shared hot
    candidate servers links them. Min-label propagation over the bipartite
    app/hot-server incidence converges in a handful of vectorised passes
    (labels only decrease and are bounded below); each component comes back
    in serial processing order, components ordered by their first application.
    """
    n = len(coupled)
    if n == 0:
        return []
    rows, cols = np.nonzero(coupled_mask[:, hot_idx])
    labels = np.arange(n)
    for _ in range(n + 1):
        server_min = np.full(len(hot_idx), n, dtype=int)
        np.minimum.at(server_min, cols, labels[rows])
        new = labels.copy()
        np.minimum.at(new, rows, server_min[cols])
        new = np.minimum(new, new[new])             # pointer jumping
        if np.array_equal(new, labels):
            break
        labels = new
    _, inverse = np.unique(labels, return_inverse=True)
    return [coupled[inverse == k] for k in range(inverse.max() + 1)]


def _bin_components(components: list[np.ndarray], n_shards: int) -> list[np.ndarray]:
    """Balance whole components across at most ``n_shards`` bins (LPT rule).

    Components never split — splitting one would break the independence
    proof — so a single dominant component caps the achievable parallelism
    (``ShardPlan.parallel_fraction`` reports exactly that).
    """
    if not components:
        return []
    n_bins = min(n_shards, len(components))
    loads = [0] * n_bins
    bins: list[list[int]] = [[] for _ in range(n_bins)]
    by_size = sorted(range(len(components)), key=lambda c: (-len(components[c]), c))
    for c in by_size:
        b = min(range(n_bins), key=lambda k: (loads[k], k))
        bins[b].append(c)
        loads[b] += len(components[c])
    return [np.concatenate([components[c] for c in sorted(chosen)])
            for chosen in bins if chosen]


def _argmin_chunk(dense: DenseCosts, apps: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Batched static-cost choices for one shard of the application axis.

    One row argmin over ``dense.cost`` (``+inf`` outside the mask) per
    application — same values, same lowest-index ties, same skip on an
    infinite minimum as the serial kernel's
    ``argmin(where(feasible, marginal, inf))`` whenever the activation term
    vanishes on the row.

    * For a *free* application (component mode) this IS the final placement:
      fits always holds on its candidates, so feasible equals the mask at any
      point of the fill.
    * In speculative mode it is the *speculative winner*: capacity only
      shrinks during a fill, so every candidate preferred over the winner at
      the application's actual turn would also be preferred now — the
      reconciliation replay therefore only re-checks the winner's own fit.

    ``-1`` marks applications with no finite-cost candidate, which the
    serial kernel provably leaves unplaced.
    """
    rows = dense.cost[apps]
    choice = np.argmin(rows, axis=1).astype(int)
    finite = np.isfinite(rows[np.arange(len(apps)), choice])
    return apps, np.where(finite, choice, -1)


def _solve_coupled_bin(state: GreedyState, energy_j: np.ndarray,
                       apps: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Serial greedy fill of one bin of coupled components on a state clone.

    The clone's hot-server state evolves exactly as the serial kernel's: only
    this bin's applications can place on this bin's hot servers (components
    are closed over hot candidates, free applications have none), and
    placements elsewhere — by this bin on shared non-hot servers, or by other
    shards anywhere — can never flip a fits() or marginal-cost comparison.
    """
    clone = state.clone()
    greedy_fill(clone, energy_j, apps=apps)
    return apps, clone.assignment[apps]


def _run_tasks(tasks: list, n_workers: int) -> list:
    """Execute shard tasks on a thread pool, preserving submission order."""
    if len(tasks) == 1:
        return [tasks[0]()]
    with ThreadPoolExecutor(max_workers=min(n_workers, len(tasks))) as pool:
        return list(pool.map(lambda task: task(), tasks))


def greedy_fill_sharded(state: GreedyState, energy_j: np.ndarray, n_shards: int,
                        min_shard_apps: int = MIN_SHARD_APPS) -> ShardPlan | None:
    """Sharded greedy placement, bit-identical to :func:`greedy_fill`.

    Plans shards (:func:`plan_shards`), solves them on a thread pool —
    batched speculative choices or free-chunk argmins as one vectorised
    operation each, coupled component bins as serial fills on state clones —
    and runs the shared-capacity reconciliation pass: every shard placement
    is replayed into the shared state in the serial kernel's processing
    order (re-validating speculative winners against the capacity rows their
    candidates straddle, and re-deriving invalidated ones with the exact
    serial step), so assignment, ``capacity_left`` and ``served`` reproduce
    the serial kernel byte for byte. Falls back to the serial kernel
    whenever the plan is missing or degenerate.

    Returns the executed plan (``None`` when the serial kernel ran) so
    callers can report shard diagnostics.
    """
    plan = plan_shards(state, energy_j, n_shards, min_shard_apps)
    if plan is None or not plan.is_parallel:
        greedy_fill(state, energy_j)
        return plan
    dense = state.dense
    tasks = [partial(_argmin_chunk, dense, chunk) for chunk in plan.free_chunks]
    tasks += [partial(_solve_coupled_bin, state, energy_j, apps)
              for apps in plan.bins]
    proposed = np.full(len(state.assignment), -1, dtype=int)
    for apps, choices in _run_tasks(tasks, n_shards):
        proposed[apps] = choices

    if plan.mode != "speculate":
        for i in plan.order:                        # the reconciliation pass
            j = proposed[i]
            if j >= 0:
                state.place(int(i), int(j))
        return plan

    demand, capacity_left = dense.demand, state.capacity_left
    for i in plan.order:                            # the reconciliation pass
        j = proposed[i]
        if j < 0:
            continue
        # O(K) revalidation of the speculative winner against the evolving
        # shared capacity (the same comparison DenseCosts.fits performs).
        if bool(np.all(demand[i, j] <= capacity_left[j] + 1e-9)):
            state.place(int(i), int(j))
            continue
        # Invalidated winner: exact serial step, specialised to the cold
        # activation channel the mode guarantees (the activation term is
        # identically zero, and x + 0.0 == x for the argmin's purposes, so
        # the marginal row is exactly the static cost row).
        feasible = dense.mask[i] & bool_all(demand[i] <= capacity_left + 1e-9)
        if not feasible.any():
            continue
        marginal = np.where(feasible, dense.cost[i], np.inf)
        j2 = int(np.argmin(marginal))
        if np.isfinite(marginal[j2]):
            state.place(int(i), int(j2))
    return plan


def assignment_to_solution(problem: PlacementProblem, assignment: np.ndarray,
                           manage_power: bool = True) -> PlacementSolution:
    """Decode an (A,) assignment vector (server index or -1) into a solution."""
    placements: dict[str, int] = {}
    unplaced: list[str] = []
    for i, app in enumerate(problem.applications):
        j = int(assignment[i])
        if j >= 0:
            placements[app.app_id] = j
        else:
            unplaced.append(app.app_id)
    if manage_power:
        power_on = problem.current_power.copy()
        for j in set(placements.values()):
            power_on[j] = 1.0
    else:
        power_on = np.ones(problem.n_servers)
    return PlacementSolution(problem=problem, placements=placements,
                             power_on=power_on, unplaced=unplaced)


def dense_greedy_solution(
    problem: PlacementProblem,
    assign: np.ndarray,
    activation: np.ndarray | None = None,
    tie_breaker: np.ndarray | None = None,
) -> PlacementSolution:
    """One-shot greedy placement for an arbitrary cost matrix.

    Used by policies whose objective is not one of the registered
    :class:`ObjectiveKind` coefficient builders (e.g. the Random baseline's
    sampled costs). Shares the compiled feasibility report and resource
    tensors; only the cost matrix is built fresh.
    """
    compilation = compile_placement(problem)
    dense = DenseCosts.from_matrices(problem, compilation.report, assign,
                                     activation, tie_breaker=tie_breaker)
    state = GreedyState(dense)
    greedy_fill(state, problem.energy_j)
    return assignment_to_solution(problem, state.assignment)


@dataclass
class EpochCompilation:
    """Everything an epoch's policies share, computed once per problem.

    All attributes are lazy: the first consumer pays for a tensor, every
    later consumer reads the cache. The object must be treated as read-only.
    """

    problem: PlacementProblem
    _report: FeasibilityReport | None = field(default=None, repr=False)
    _coefficients: dict = field(default_factory=dict, repr=False)
    _dense: dict = field(default_factory=dict, repr=False)

    @property
    def report(self) -> FeasibilityReport:
        """Feasibility report (latency SLO + profile support + capacity filter)."""
        if self._report is None:
            self._report = filter_feasible_servers(self.problem)
        return self._report

    @property
    def epoch_mean_intensity(self) -> np.ndarray:
        """(S,) epoch-mean (forecast-average) carbon intensities Ī_j."""
        return self.problem.intensity

    @property
    def nearest_feasible_ms(self) -> np.ndarray:
        """(A,) one-way latency to each application's nearest feasible server.

        Delegates to :meth:`PlacementProblem.nearest_feasible_ms` — the single
        cached vector that also backs
        :meth:`PlacementSolution.latency_increase_ms`, so the simulator's
        metrics and per-solution accounting always agree.
        """
        return self.problem.nearest_feasible_ms()

    @property
    def n_nearest_unreachable(self) -> int:
        """Applications with no feasible server at all (``nearest`` is +inf)."""
        return int(np.isinf(self.nearest_feasible_ms).sum())

    def coefficients(self, objective: ObjectiveKind,
                     alpha: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """(assign, activation) objective coefficients, cached per (kind, alpha)."""
        key = (objective, float(alpha))
        if key not in self._coefficients:
            self._coefficients[key] = objective_coefficients(self.problem, objective, alpha)
        return self._coefficients[key]

    def tie_break_for(self, objective: ObjectiveKind) -> np.ndarray:
        """Documented default tie-break matrix for an objective.

        Delegates to :func:`repro.core.objective.tie_break_matrix`, the
        single source of the rule shared with the MILP builder.
        """
        return tie_break_matrix(self.problem, objective)

    def dense(self, objective: ObjectiveKind = ObjectiveKind.CARBON,
              alpha: float = 0.0, manage_power: bool = True) -> DenseCosts:
        """Dense cost tensors for an objective, cached per (kind, alpha, power)."""
        key = (objective, float(alpha), bool(manage_power))
        if key not in self._dense:
            assign, activation = self.coefficients(objective, alpha)
            if not manage_power:
                activation = np.zeros_like(activation)
            self._dense[key] = DenseCosts.from_matrices(
                self.problem, self.report, assign, activation,
                manage_power=manage_power, tie_breaker=self.tie_break_for(objective))
        return self._dense[key]


def compile_placement(problem: PlacementProblem,
                      previous: EpochCompilation | None = None) -> EpochCompilation:
    """The (memoised) compilation of a placement problem.

    Returns the same :class:`EpochCompilation` for repeated calls on the same
    problem instance — this is how the four policies, the solver registry,
    and the simulator's metrics loop end up sharing one set of tensors.

    ``previous`` enables warm-started epoch re-solves
    (:meth:`repro.core.incremental.IncrementalPlacer.resolve_epoch`): when the
    new problem covers the same applications and servers with an unchanged
    latency matrix, the previous epoch's nearest-feasible-server latencies
    are carried over instead of recomputed. Objective coefficients and the
    feasibility report are never carried over — intensities and capacities
    move between epochs.
    """
    compilation = getattr(problem, "_compilation", None)
    if compilation is None:
        compilation = EpochCompilation(problem=problem)
        if previous is not None and _layout_unchanged(problem, previous.problem):
            problem._nearest_feasible = previous.problem._nearest_feasible
        problem._compilation = compilation
    return compilation


def clear_compilation(problem: PlacementProblem) -> None:
    """Drop every cache derived from a problem's arrays.

    Call after mutating a problem in place (so nothing solves against stale
    tensors), or to time an uncompiled solve fairly. Clears the memoised
    :class:`EpochCompilation` *and* the problem-level caches it builds on
    (feasibility mask, dense resource tensors, id index maps).
    """
    problem._compilation = None
    problem._feasible_mask = None
    problem._nearest_feasible = None
    problem._dense_resources = None
    problem._app_index_map = None
    problem._server_index_map = None


def _layout_unchanged(new: PlacementProblem, old: PlacementProblem) -> bool:
    """Same apps, servers, SLOs, and latencies — the nearest-server geometry."""
    if new.n_applications != old.n_applications or new.n_servers != old.n_servers:
        return False
    if any(a is not b for a, b in zip(new.applications, old.applications)):
        return False
    if any(a is not b for a, b in zip(new.servers, old.servers)):
        return False
    return np.array_equal(new.latency_ms, old.latency_ms) and \
        np.array_equal(new.supported, old.supported)
