"""Scenario compilation: one dense placement kernel shared across all policies.

At CDN scale the same :class:`~repro.core.problem.PlacementProblem` is solved
by four policies per epoch, and before this layer existed each of them
independently re-derived the feasibility report, the objective coefficient
matrices, and the dense cost/demand tensors. An :class:`EpochCompilation`
precomputes all of that exactly once per problem and hands the read-only
results to every consumer — the solver backends (through
:class:`~repro.solver.backend.SolveRequest`), the baseline policies, and the
CDN simulator's metrics loop:

* the feasibility report (latency SLO + profile support + standalone capacity);
* per-objective coefficient matrices (carbon / energy / latency / intensity,
  plus the multi-objective blend), cached by ``(objective, alpha)``;
* :class:`DenseCosts` tensors, cached by ``(objective, alpha, manage_power)``;
* the epoch-mean carbon intensities Ī_j (the problem's ``intensity`` vector);
* each application's nearest-feasible-server latency (the baseline for the
  paper's "increased latency" metric).

**Cache keys and invalidation.** The compilation is memoised on the problem
instance (``compile_placement`` returns the same object for the same
problem). Problems are immutable once built — each simulation epoch
constructs a fresh problem from fleet state, which naturally invalidates
everything. Code that mutates a problem in place (tests, mostly) must call
:func:`clear_compilation` afterwards.

**The one greedy kernel.** :func:`greedy_fill` is the single greedy placement
engine in the tree: most-constrained application first (fewest candidate
servers, larger maximum energy first among equals), each placed at the server
minimising the marginal augmented cost (assignment cost plus the activation
cost of switching a currently-off server on). Tie-breaking is by an epsilon
perturbation of the cost matrix (see :meth:`DenseCosts.from_matrices`):
objective-equal servers are ordered by the tie-break matrix — one-way latency
for the carbon/energy/intensity objectives, operational carbon for the
latency objective — and remaining exact ties resolve to the lowest server
index. This replaces the seed's object-based ``greedy_place`` engine, whose
lexicographic ``(cost, tie)`` rule it reproduces up to that epsilon (a frozen
copy of the old engine served as a parity oracle for one release and has
since been retired).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.filters import FeasibilityReport, filter_feasible_servers
from repro.core.objective import (
    ObjectiveKind,
    apply_tie_break,
    objective_coefficients,
    tie_break_matrix,
)
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution

@dataclass
class DenseCosts:
    """Dense numpy view of a placement instance for the vectorised kernels.

    Attributes
    ----------
    keys:
        Resource dimensions, the K axis of ``demand`` / ``capacity``.
    demand:
        (A, S, K) per-pair resource demands (zero outside the support mask).
    capacity:
        (S, K) available capacity per server.
    mask:
        (A, S) candidate mask from the feasibility report.
    cost:
        (A, S) assignment cost including the deterministic epsilon tie-break;
        ``+inf`` outside the mask.
    raw_assign:
        (A, S) un-augmented assignment coefficients (for reporting).
    activation:
        (S,) activation cost of switching a server on (zero when power is
        unmanaged).
    initially_on:
        (S,) bool, servers already on (all True when power is unmanaged).
    """

    keys: list[str]
    demand: np.ndarray
    capacity: np.ndarray
    mask: np.ndarray
    cost: np.ndarray
    raw_assign: np.ndarray
    activation: np.ndarray
    initially_on: np.ndarray

    @classmethod
    def from_matrices(
        cls,
        problem: PlacementProblem,
        report: FeasibilityReport,
        assign: np.ndarray,
        activation: np.ndarray | None = None,
        manage_power: bool = True,
        tie_breaker: np.ndarray | None = None,
    ) -> "DenseCosts":
        """Assemble dense tensors for arbitrary assignment/activation costs.

        The demand and capacity tensors are shared read-only with the problem
        (built once per epoch); only the cost matrix is objective-specific.
        ``tie_breaker`` is an optional (A, S) secondary cost: objective-equal
        candidates order by it through an epsilon perturbation scaled so the
        perturbation never exceeds ``1e-5`` of the largest feasible
        assignment cost. ``None`` disables the perturbation (exact ties then
        resolve to the lowest server index).
        """
        mask = report.mask
        s = problem.n_servers
        if activation is None:
            activation = np.zeros(s)
        cost = cls._tie_broken(assign, mask, tie_breaker)
        initially_on = (problem.current_power > 0.5) if manage_power \
            else np.ones(s, dtype=bool)
        return cls(keys=list(problem.resource_keys()),
                   demand=problem.demand_dense(),
                   capacity=problem.capacity_dense(),
                   mask=mask, cost=cost,
                   raw_assign=assign, activation=np.asarray(activation, dtype=float),
                   initially_on=initially_on)

    @staticmethod
    def _tie_broken(assign: np.ndarray, mask: np.ndarray,
                    tie: np.ndarray | None) -> np.ndarray:
        """Assignment cost with the epsilon tie-break perturbation.

        The rule and epsilon live in :func:`repro.core.objective.apply_tie_break`
        and are shared with the MILP builder, so every backend minimises the
        same augmented objective and cross-backend comparisons are apples to
        apples.
        """
        cost = assign.astype(float, copy=True)
        if tie is not None:
            cost = apply_tie_break(cost, mask, tie)
        return np.where(mask, cost, np.inf)

    def fits(self, i: int, capacity_left: np.ndarray) -> np.ndarray:
        """(S,) bool: servers with room for application ``i`` given remaining capacity."""
        return bool_all(self.demand[i] <= capacity_left + 1e-9)


def bool_all(fits_per_key: np.ndarray) -> np.ndarray:
    """All-dimensions reduction that tolerates a zero-width resource axis."""
    if fits_per_key.shape[-1] == 0:
        return np.ones(fits_per_key.shape[:-1], dtype=bool)
    return np.all(fits_per_key, axis=-1)


class GreedyState:
    """Mutable assignment state shared by the construction and search phases."""

    def __init__(self, dense: DenseCosts) -> None:
        self.dense = dense
        n_apps, n_servers = dense.mask.shape
        self.assignment = np.full(n_apps, -1, dtype=int)
        self.capacity_left = dense.capacity.copy()
        self.served = np.zeros(n_servers, dtype=int)

    def would_activate(self) -> np.ndarray:
        """(S,) bool: servers an assignment would newly switch on right now."""
        return (self.served == 0) & ~self.dense.initially_on

    def place(self, i: int, j: int) -> None:
        """Commit application ``i`` to server ``j``."""
        self.assignment[i] = j
        self.capacity_left[j] -= self.dense.demand[i, j]
        self.served[j] += 1

    def move(self, i: int, j0: int, j1: int) -> None:
        """Relocate application ``i`` from server ``j0`` to ``j1``."""
        self.capacity_left[j0] += self.dense.demand[i, j0]
        self.served[j0] -= 1
        self.place(i, j1)


def greedy_fill(state: GreedyState, energy_j: np.ndarray) -> None:
    """THE greedy placement kernel (every policy and backend routes here).

    Places each still-unassigned application at its cheapest marginal-cost
    server: most-constrained application first (fewest candidates, then
    larger maximum energy so heavy applications grab green capacity before it
    fills up), marginal cost = tie-broken assignment cost plus the activation
    cost when the assignment would switch the server on. ``np.argmin`` picks
    the lowest server index among exact ties.
    """
    dense = state.dense
    pending = [i for i in range(len(state.assignment)) if state.assignment[i] < 0]
    pending.sort(key=lambda i: (int(dense.mask[i].sum()),
                                -float(energy_j[i].max(initial=0.0))))
    for i in pending:
        feasible = dense.mask[i] & dense.fits(i, state.capacity_left)
        if not feasible.any():
            continue
        marginal = dense.cost[i] + dense.activation * state.would_activate()
        marginal = np.where(feasible, marginal, np.inf)
        state.place(i, int(np.argmin(marginal)))


def assignment_to_solution(problem: PlacementProblem, assignment: np.ndarray,
                           manage_power: bool = True) -> PlacementSolution:
    """Decode an (A,) assignment vector (server index or -1) into a solution."""
    placements: dict[str, int] = {}
    unplaced: list[str] = []
    for i, app in enumerate(problem.applications):
        j = int(assignment[i])
        if j >= 0:
            placements[app.app_id] = j
        else:
            unplaced.append(app.app_id)
    if manage_power:
        power_on = problem.current_power.copy()
        for j in set(placements.values()):
            power_on[j] = 1.0
    else:
        power_on = np.ones(problem.n_servers)
    return PlacementSolution(problem=problem, placements=placements,
                             power_on=power_on, unplaced=unplaced)


def dense_greedy_solution(
    problem: PlacementProblem,
    assign: np.ndarray,
    activation: np.ndarray | None = None,
    tie_breaker: np.ndarray | None = None,
) -> PlacementSolution:
    """One-shot greedy placement for an arbitrary cost matrix.

    Used by policies whose objective is not one of the registered
    :class:`ObjectiveKind` coefficient builders (e.g. the Random baseline's
    sampled costs). Shares the compiled feasibility report and resource
    tensors; only the cost matrix is built fresh.
    """
    compilation = compile_placement(problem)
    dense = DenseCosts.from_matrices(problem, compilation.report, assign,
                                     activation, tie_breaker=tie_breaker)
    state = GreedyState(dense)
    greedy_fill(state, problem.energy_j)
    return assignment_to_solution(problem, state.assignment)


@dataclass
class EpochCompilation:
    """Everything an epoch's policies share, computed once per problem.

    All attributes are lazy: the first consumer pays for a tensor, every
    later consumer reads the cache. The object must be treated as read-only.
    """

    problem: PlacementProblem
    _report: FeasibilityReport | None = field(default=None, repr=False)
    _coefficients: dict = field(default_factory=dict, repr=False)
    _dense: dict = field(default_factory=dict, repr=False)

    @property
    def report(self) -> FeasibilityReport:
        """Feasibility report (latency SLO + profile support + capacity filter)."""
        if self._report is None:
            self._report = filter_feasible_servers(self.problem)
        return self._report

    @property
    def epoch_mean_intensity(self) -> np.ndarray:
        """(S,) epoch-mean (forecast-average) carbon intensities Ī_j."""
        return self.problem.intensity

    @property
    def nearest_feasible_ms(self) -> np.ndarray:
        """(A,) one-way latency to each application's nearest feasible server.

        Delegates to :meth:`PlacementProblem.nearest_feasible_ms` — the single
        cached vector that also backs
        :meth:`PlacementSolution.latency_increase_ms`, so the simulator's
        metrics and per-solution accounting always agree.
        """
        return self.problem.nearest_feasible_ms()

    @property
    def n_nearest_unreachable(self) -> int:
        """Applications with no feasible server at all (``nearest`` is +inf)."""
        return int(np.isinf(self.nearest_feasible_ms).sum())

    def coefficients(self, objective: ObjectiveKind,
                     alpha: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """(assign, activation) objective coefficients, cached per (kind, alpha)."""
        key = (objective, float(alpha))
        if key not in self._coefficients:
            self._coefficients[key] = objective_coefficients(self.problem, objective, alpha)
        return self._coefficients[key]

    def tie_break_for(self, objective: ObjectiveKind) -> np.ndarray:
        """Documented default tie-break matrix for an objective.

        Delegates to :func:`repro.core.objective.tie_break_matrix`, the
        single source of the rule shared with the MILP builder.
        """
        return tie_break_matrix(self.problem, objective)

    def dense(self, objective: ObjectiveKind = ObjectiveKind.CARBON,
              alpha: float = 0.0, manage_power: bool = True) -> DenseCosts:
        """Dense cost tensors for an objective, cached per (kind, alpha, power)."""
        key = (objective, float(alpha), bool(manage_power))
        if key not in self._dense:
            assign, activation = self.coefficients(objective, alpha)
            if not manage_power:
                activation = np.zeros_like(activation)
            self._dense[key] = DenseCosts.from_matrices(
                self.problem, self.report, assign, activation,
                manage_power=manage_power, tie_breaker=self.tie_break_for(objective))
        return self._dense[key]


def compile_placement(problem: PlacementProblem,
                      previous: EpochCompilation | None = None) -> EpochCompilation:
    """The (memoised) compilation of a placement problem.

    Returns the same :class:`EpochCompilation` for repeated calls on the same
    problem instance — this is how the four policies, the solver registry,
    and the simulator's metrics loop end up sharing one set of tensors.

    ``previous`` enables warm-started epoch re-solves
    (:meth:`repro.core.incremental.IncrementalPlacer.resolve_epoch`): when the
    new problem covers the same applications and servers with an unchanged
    latency matrix, the previous epoch's nearest-feasible-server latencies
    are carried over instead of recomputed. Objective coefficients and the
    feasibility report are never carried over — intensities and capacities
    move between epochs.
    """
    compilation = getattr(problem, "_compilation", None)
    if compilation is None:
        compilation = EpochCompilation(problem=problem)
        if previous is not None and _layout_unchanged(problem, previous.problem):
            problem._nearest_feasible = previous.problem._nearest_feasible
        problem._compilation = compilation
    return compilation


def clear_compilation(problem: PlacementProblem) -> None:
    """Drop every cache derived from a problem's arrays.

    Call after mutating a problem in place (so nothing solves against stale
    tensors), or to time an uncompiled solve fairly. Clears the memoised
    :class:`EpochCompilation` *and* the problem-level caches it builds on
    (feasibility mask, dense resource tensors, id index maps).
    """
    problem._compilation = None
    problem._feasible_mask = None
    problem._nearest_feasible = None
    problem._dense_resources = None
    problem._app_index_map = None
    problem._server_index_map = None


def _layout_unchanged(new: PlacementProblem, old: PlacementProblem) -> bool:
    """Same apps, servers, SLOs, and latencies — the nearest-server geometry."""
    if new.n_applications != old.n_applications or new.n_servers != old.n_servers:
        return False
    if any(a is not b for a, b in zip(new.applications, old.applications)):
        return False
    if any(a is not b for a, b in zip(new.servers, old.servers)):
        return False
    return np.array_equal(new.latency_ms, old.latency_ms) and \
        np.array_equal(new.supported, old.supported)
