"""Anytime exact tier: OR-Tools CP-SAT (``cpsat``) and pywraplp (``milp``).

Both backends compile the placement MILP *directly from the epoch
compilation's dense tensors* — the same tie-broken cost matrix, demand/
capacity tensors, and activation coefficients every other backend reads
(:meth:`SolveRequest.dense`) — so they minimise the identical augmented
objective as ``bnb`` and the greedy kernel, and cross-backend objective
comparisons are apples to apples.

Anytime contract: the greedy kernel's solution (or the request's sanitized
warm start) is installed as a solver *hint*, ``time_budget_s`` caps the wall
clock, and any budget returns the best incumbent found so far together with
the solver's proven bound (:attr:`PlacementSolution.solver_bound`) and the
exact parameters used (:attr:`PlacementSolution.solver_params`).
``num_search_workers`` (:class:`~repro.solver.config.SolverConfig`) widens
CP-SAT's portfolio search — see the determinism carve-out on
:class:`SolverConfig`: under a finite budget parallel search may change which
incumbent is best at the deadline.

OR-Tools is an **optional dependency** (``pip install .[exact]``). The
backends register unconditionally; when the import is missing at solve time
they emit a structured :class:`OrToolsUnavailableWarning` and return ``None``,
and the registry front door falls back to the deterministic heuristic — never
an ``ImportError`` on a solve path.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.core.solution import PlacementSolution
from repro.solver.backend import SolveRequest
from repro.solver.compile import DenseCosts, GreedyState, greedy_fill
from repro.solver.registry import register_backend

#: Wall-clock budget when the request carries none (matches the bnb default).
DEFAULT_EXACT_BUDGET_S: float = 30.0

#: Fixed-point scale for CP-SAT's integer coefficients. Deterministic: the
#: same request always produces the same integer model.
CPSAT_SCALE: int = 10**6

#: pywraplp solver ids tried in order (SCIP when the wheel bundles it,
#: CBC as the fallback — both ship with the standard ortools wheel).
MILP_SOLVER_IDS: tuple[str, ...] = ("SCIP", "CBC")


class OrToolsUnavailableWarning(UserWarning):
    """OR-Tools is not installed; the registry degrades to the heuristic.

    A structured warning category (rather than a bare ``UserWarning``) so
    callers and tests can filter for exactly this degradation, and so the
    fallback never surfaces as an ``ImportError`` from a solve path.
    """


def ortools_available() -> bool:
    """Whether the optional ``ortools`` dependency can be imported."""
    return _load_ortools() is not None


def _load_ortools():
    """The ``ortools`` package, or ``None`` when the optional dep is absent."""
    try:
        import ortools  # noqa: F401
        return ortools
    except ImportError:
        return None


def _warn_unavailable(backend: str) -> None:
    warnings.warn(
        f"solver backend {backend!r} requires the optional OR-Tools "
        f"dependency (pip install .[exact]); falling back to the "
        f"deterministic heuristic backend",
        OrToolsUnavailableWarning, stacklevel=3)


# -- shared dense-tensor model view -------------------------------------------


@dataclass
class _DenseModel:
    """The placement MILP read off the epoch compilation's dense tensors.

    One (application, server) pair per ``mask`` entry, exactly-one assignment
    per placeable application, per-server/per-resource capacity with the
    power coupling, and the tie-broken cost matrix as objective — the same
    formulation :func:`repro.core.model_builder.build_placement_model` builds
    from the sparse problem, assembled here from the tensors every backend
    already shares.
    """

    request: SolveRequest
    dense: DenseCosts = field(init=False)
    #: Per-application arrays of candidate server indices (mask rows).
    candidates: list[np.ndarray] = field(init=False)
    #: Greedy (or warm-start) assignment used as the solver hint; -1 unplaced.
    hint: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.dense = self.request.dense()
        self.candidates = [np.flatnonzero(self.dense.mask[i])
                           for i in range(self.dense.mask.shape[0])]
        self.hint = self._hint_assignment()

    @property
    def n_apps(self) -> int:
        return self.dense.mask.shape[0]

    @property
    def n_servers(self) -> int:
        return self.dense.mask.shape[1]

    def _hint_assignment(self) -> np.ndarray:
        """The warm hint: the request's sanitized warm start completed by the
        greedy kernel (the registry's heuristic seed, minus local search)."""
        request = self.request
        state = GreedyState(self.dense)
        if request.warm_start:
            for app_id, j in request.warm_start.items():
                i = request.problem.app_index(app_id)  # sanitized upstream
                j = int(j)
                if not self.dense.mask[i, j] or state.assignment[i] >= 0:
                    continue
                if not bool(np.all(self.dense.demand[i, j]
                                   <= state.capacity_left[j] + 1e-9)):
                    continue
                state.place(i, j)
        greedy_fill(state, request.problem.energy_j)
        return state.assignment

    def decode(self, assignment: np.ndarray, *, gap: float, bound: float,
               params: dict[str, object]) -> PlacementSolution:
        """Build a solution (placements, power, provenance) from an (A,) vector."""
        problem = self.request.problem
        placements: dict[str, int] = {}
        unplaced: list[str] = []
        for i, app in enumerate(problem.applications):
            j = int(assignment[i])
            if j >= 0:
                placements[app.app_id] = j
            else:
                unplaced.append(app.app_id)
        power_on = problem.current_power.copy()
        for j in set(placements.values()):
            power_on[j] = 1.0
        return PlacementSolution(problem=problem, placements=placements,
                                 power_on=power_on, unplaced=unplaced,
                                 solver_gap=gap, solver_bound=bound,
                                 solver_params=params)


def _relative_gap(objective: float, bound: float) -> float:
    """Relative incumbent-vs-bound gap (0 when proven optimal)."""
    if not (math.isfinite(objective) and math.isfinite(bound)):
        return float("nan")
    denom = max(1.0, abs(objective))
    return max(0.0, (objective - bound) / denom)


# -- CP-SAT -------------------------------------------------------------------


@register_backend("cpsat", aliases=("cp-sat", "ortools"))
@dataclass
class CpSatBackend:
    """OR-Tools CP-SAT over the dense placement tensors (integer-scaled).

    Cost, demand, and capacity are fixed-point scaled by :data:`CPSAT_SCALE`
    (demand rounded up, capacity rounded down, so a scaled-feasible packing
    is always float-feasible). The greedy/warm-start assignment is installed
    with ``AddHint`` and the search is capped by the request's remaining
    budget — CP-SAT then behaves as an anytime solver: it returns its best
    incumbent plus ``BestObjectiveBound`` whenever the budget expires.
    """

    name: str = "cpsat"

    def solve(self, request: SolveRequest) -> PlacementSolution | None:
        if _load_ortools() is None:
            _warn_unavailable(self.name)
            return None
        from ortools.sat.python import cp_model

        view = _DenseModel(request)
        dense = view.dense
        model = cp_model.CpModel()

        y = [model.NewBoolVar(f"y[{j}]") for j in range(view.n_servers)]
        for j in range(view.n_servers):
            if bool(dense.initially_on[j]):
                model.Add(y[j] == 1)  # power-state consistency (Equation 4)
        x: dict[tuple[int, int], object] = {}
        for i in range(view.n_apps):
            row = []
            for j in view.candidates[i]:
                j = int(j)
                var = model.NewBoolVar(f"x[{i},{j}]")
                x[i, j] = var
                model.AddImplication(var, y[j])  # Equation 5
                row.append(var)
            if row:
                model.AddExactlyOne(row)  # Equation 3

        # Equation 1: capacity per server and resource key, with the y coupling.
        for j in range(view.n_servers):
            interested = [i for i in range(view.n_apps) if (i, j) in x]
            if not interested:
                continue
            for k in range(len(dense.keys)):
                terms, coeffs = [], []
                for i in interested:
                    d = int(math.ceil(float(dense.demand[i, j, k]) * CPSAT_SCALE - 1e-9))
                    if d > 0:
                        terms.append(x[i, j])
                        coeffs.append(d)
                if not terms:
                    continue
                cap = int(math.floor(float(dense.capacity[j, k]) * CPSAT_SCALE + 1e-9))
                model.Add(cp_model.LinearExpr.WeightedSum(terms, coeffs)
                          <= cap * y[j])

        # Objective: tie-broken assignment cost + activation of newly-on servers.
        obj_terms, obj_coeffs = [], []
        for (i, j), var in x.items():
            obj_terms.append(var)
            obj_coeffs.append(int(round(float(dense.cost[i, j]) * CPSAT_SCALE)))
        for j in range(view.n_servers):
            if not bool(dense.initially_on[j]) and float(dense.activation[j]) != 0.0:
                obj_terms.append(y[j])
                obj_coeffs.append(int(round(float(dense.activation[j]) * CPSAT_SCALE)))
        model.Minimize(cp_model.LinearExpr.WeightedSum(obj_terms, obj_coeffs))

        # Warm hint: the greedy kernel's placement (or the sanitized warm
        # start completed by it) seeds the search so any budget starts from
        # a known-good incumbent.
        hint_vars, hint_values = [], []
        hinted_servers = set()
        for i in range(view.n_apps):
            j = int(view.hint[i])
            if j >= 0 and (i, j) in x:
                hint_vars.append(x[i, j])
                hint_values.append(1)
                hinted_servers.add(j)
        for j in hinted_servers:
            hint_vars.append(y[j])
            hint_values.append(1)
        if hint_vars:
            model.AddHint(hint_vars, hint_values)

        solver = cp_model.CpSolver()
        budget_s = request.remaining_s(default=DEFAULT_EXACT_BUDGET_S)
        params = {
            "backend": self.name,
            "max_time_in_seconds": float(budget_s),
            "num_search_workers": int(request.config.num_search_workers),
            "random_seed": int(request.seed) % (2**31 - 1),
            "scale": CPSAT_SCALE,
        }
        solver.parameters.max_time_in_seconds = params["max_time_in_seconds"]
        solver.parameters.num_search_workers = params["num_search_workers"]
        solver.parameters.random_seed = params["random_seed"]
        status = solver.Solve(model)
        if status not in (cp_model.OPTIMAL, cp_model.FEASIBLE):
            return None

        assignment = np.full(view.n_apps, -1, dtype=int)
        for (i, j), var in x.items():
            if solver.Value(var):
                assignment[i] = j
        objective = float(solver.ObjectiveValue()) / CPSAT_SCALE
        bound = float(solver.BestObjectiveBound()) / CPSAT_SCALE
        gap = 0.0 if status == cp_model.OPTIMAL else _relative_gap(objective, bound)
        params["status"] = solver.StatusName(status)
        return view.decode(assignment, gap=gap, bound=bound, params=params)


# -- pywraplp (MILP) ----------------------------------------------------------


@register_backend("milp", aliases=("pywraplp", "mip"))
@dataclass
class PywraplpBackend:
    """OR-Tools ``pywraplp`` (SCIP, CBC fallback) over the dense tensors.

    The float formulation mirrors :class:`CpSatBackend` without fixed-point
    scaling; the hint goes through ``SetHint`` (where the wrapped solver
    supports it) and ``SetTimeLimit`` makes the solve anytime. The proven
    bound is read from ``Objective().BestBound()``.
    """

    name: str = "milp"

    def solve(self, request: SolveRequest) -> PlacementSolution | None:
        if _load_ortools() is None:
            _warn_unavailable(self.name)
            return None
        from ortools.linear_solver import pywraplp

        solver = None
        solver_id = None
        for candidate in MILP_SOLVER_IDS:
            solver = pywraplp.Solver.CreateSolver(candidate)
            if solver is not None:
                solver_id = candidate
                break
        if solver is None:
            _warn_unavailable(self.name)
            return None

        view = _DenseModel(request)
        dense = view.dense

        y = [solver.IntVar(1.0 if bool(dense.initially_on[j]) else 0.0, 1.0,
                           f"y[{j}]") for j in range(view.n_servers)]
        x: dict[tuple[int, int], object] = {}
        for i in range(view.n_apps):
            row = []
            for j in view.candidates[i]:
                j = int(j)
                var = solver.IntVar(0.0, 1.0, f"x[{i},{j}]")
                x[i, j] = var
                solver.Add(var <= y[j])  # Equation 5
                row.append(var)
            if row:
                solver.Add(solver.Sum(row) == 1.0)  # Equation 3

        for j in range(view.n_servers):
            interested = [i for i in range(view.n_apps) if (i, j) in x]
            if not interested:
                continue
            for k in range(len(dense.keys)):
                terms = [(x[i, j], float(dense.demand[i, j, k]))
                         for i in interested if float(dense.demand[i, j, k]) > 0.0]
                if not terms:
                    continue
                cap = float(dense.capacity[j, k])
                solver.Add(solver.Sum(v * d for v, d in terms) <= cap * y[j])

        objective = solver.Objective()
        for (i, j), var in x.items():
            objective.SetCoefficient(var, float(dense.cost[i, j]))
        for j in range(view.n_servers):
            if not bool(dense.initially_on[j]) and float(dense.activation[j]) != 0.0:
                objective.SetCoefficient(y[j], float(dense.activation[j]))
        objective.SetMinimization()

        hint_vars, hint_values = [], []
        hinted_servers = set()
        for i in range(view.n_apps):
            j = int(view.hint[i])
            if j >= 0 and (i, j) in x:
                hint_vars.append(x[i, j])
                hint_values.append(1.0)
                hinted_servers.add(j)
        for j in hinted_servers:
            hint_vars.append(y[j])
            hint_values.append(1.0)
        if hint_vars:
            try:
                solver.SetHint(hint_vars, hint_values)
            except (AttributeError, TypeError):  # older wrappers lack SetHint
                pass

        budget_s = request.remaining_s(default=DEFAULT_EXACT_BUDGET_S)
        params = {
            "backend": self.name,
            "solver_id": solver_id,
            "time_limit_ms": int(max(1.0, budget_s * 1000.0)),
            "num_search_workers": int(request.config.num_search_workers),
            "seed": int(request.seed),
        }
        solver.SetTimeLimit(params["time_limit_ms"])
        if params["num_search_workers"] > 1:
            try:
                solver.SetNumThreads(params["num_search_workers"])
            except AttributeError:
                pass
        status = solver.Solve()
        if status not in (pywraplp.Solver.OPTIMAL, pywraplp.Solver.FEASIBLE):
            return None

        assignment = np.full(view.n_apps, -1, dtype=int)
        for (i, j), var in x.items():
            if var.solution_value() > 0.5:
                assignment[i] = j
        obj_value = float(objective.Value())
        try:
            bound = float(objective.BestBound())
        except Exception:  # pragma: no cover - wrapper/solver without a bound
            bound = float("nan")
        gap = 0.0 if status == pywraplp.Solver.OPTIMAL \
            else _relative_gap(obj_value, bound)
        params["status"] = "OPTIMAL" if status == pywraplp.Solver.OPTIMAL \
            else "FEASIBLE"
        return view.decode(assignment, gap=gap, bound=bound, params=params)
