"""Exact backend: the placement MILP solved by branch and bound.

This is the original CarbonEdge solve path — build the Equations 1–7 MILP with
:func:`repro.core.model_builder.build_placement_model` and run the best-first
:class:`~repro.solver.branch_and_bound.BranchAndBoundSolver` over it —
refactored behind the :class:`~repro.solver.backend.PlacementSolver` protocol
so it is interchangeable with the heuristic backends. The request's time
budget caps the branch-and-bound wall clock; when the budget or node limit is
exhausted the solver still returns its best incumbent (with a gap), and the
registry fills any applications the incumbent left out from the heuristic
baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model_builder import (
    assignment_groups,
    build_placement_model,
    solution_from_values,
)
from repro.core.solution import PlacementSolution
from repro.solver.backend import SolveRequest
from repro.solver.branch_and_bound import BranchAndBoundSolver
from repro.solver.registry import register_backend

#: Node budget when the request carries none.
DEFAULT_MAX_NODES: int = 200

#: Wall-clock budget when the request carries none.
DEFAULT_TIME_LIMIT_S: float = 30.0


@register_backend("bnb", aliases=("exact", "branch-and-bound"))
@dataclass
class BranchAndBoundBackend:
    """Branch and bound over the placement MILP (HiGHS LP relaxations)."""

    name: str = "bnb"

    def solve(self, request: SolveRequest) -> PlacementSolution | None:
        problem = request.problem
        model, report = build_placement_model(
            problem, objective=request.objective, alpha=request.alpha,
            report=request.report, manage_power=request.manage_power)
        solver = BranchAndBoundSolver(
            max_nodes=request.max_nodes or DEFAULT_MAX_NODES,
            time_limit_s=request.remaining_s(default=DEFAULT_TIME_LIMIT_S),
            rounding_groups=assignment_groups(problem, report),
        )
        result = solver.solve(model)
        if not result.has_solution:
            return None
        placements, power_on = solution_from_values(problem, report, result.values)
        unplaced = [problem.applications[i].app_id for i in report.unplaceable]
        return PlacementSolution(problem=problem, placements=placements,
                                 power_on=power_on, unplaced=unplaced,
                                 solver_gap=result.gap,
                                 solver_bound=result.bound,
                                 solver_params={
                                     "backend": self.name,
                                     "max_nodes": solver.max_nodes,
                                     "time_limit_s": solver.time_limit_s,
                                     "nodes_explored": result.nodes_explored,
                                 })
