"""Built-in solver backends.

Importing this package registers every built-in backend with the registry;
:mod:`repro.solver.registry` does so on first use, so external code never
needs to import these modules directly.
"""

from repro.solver.backends import exact, heuristic, lp_rounding, ortools_exact

__all__ = ["exact", "heuristic", "lp_rounding", "ortools_exact"]
