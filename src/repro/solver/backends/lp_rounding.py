"""LP-relaxation + randomized-rounding backend.

Promoted from the internals of the legacy ``lp-round`` solver strategy: solve
the LP relaxation of the placement MILP once, and when it comes back
fractional, round it. On top of the original deterministic round-and-repair
pass this backend adds *randomized rounding*: each trial samples every
application's server from its fractional assignment distribution, repairs
capacity conflicts by falling back to the largest-fraction server that still
fits, and the best feasible trial (by placed count, then augmented cost) wins.
For assignment-like LPs the relaxation is integral most of the time, so the
rounding machinery only runs on the genuinely fractional instances where a
single deterministic rounding is weakest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.model_builder import (
    build_placement_model,
    solution_from_values,
    x_name,
)
from repro.core.solution import PlacementSolution
from repro.solver.backend import DenseCosts, SolveRequest, solution_from_assignment
from repro.solver.backend import bool_all
from repro.solver.lp_relaxation import solve_lp_relaxation
from repro.solver.registry import register_backend

#: Rounding trials when the time budget does not cut them short.
DEFAULT_TRIALS: int = 16

#: Rounding budget when the request carries none.
DEFAULT_ROUNDING_BUDGET_S: float = 5.0


@register_backend("lp-round", aliases=("lp-rounding", "rounding"))
@dataclass
class LPRandomizedRoundingBackend:
    """One LP relaxation followed by randomized rounding with repair."""

    n_trials: int = DEFAULT_TRIALS
    name: str = "lp-round"

    def solve(self, request: SolveRequest) -> PlacementSolution | None:
        problem = request.problem
        model, report = build_placement_model(
            problem, objective=request.objective, alpha=request.alpha,
            report=request.report, manage_power=request.manage_power)
        relaxed = solve_lp_relaxation(model)
        if not relaxed.has_solution:
            return None
        if relaxed.is_integral(model.binary_names()):
            placements, power_on = solution_from_values(problem, report, relaxed.values)
            unplaced = [problem.applications[i].app_id for i in report.unplaceable]
            return PlacementSolution(problem=problem, placements=placements,
                                     power_on=power_on, unplaced=unplaced, solver_gap=0.0)
        return self._round(request, relaxed.values)

    # -- randomized rounding ----------------------------------------------------

    def _round(self, request: SolveRequest,
               values: dict[str, float]) -> PlacementSolution | None:
        problem = request.problem
        dense = request.dense()
        fractions = self._fraction_matrix(request, values)
        rng = np.random.default_rng(request.seed)
        deadline = request.deadline(DEFAULT_ROUNDING_BUDGET_S)

        best: np.ndarray | None = None
        best_key: tuple[float, float] | None = None
        for trial in range(self.n_trials):
            if best is not None and time.monotonic() >= deadline:
                break
            # Trial 0 is deterministic (argmax fraction), the rest sample.
            assignment = self._one_trial(dense, fractions, rng, sample=trial > 0)
            placed = int((assignment >= 0).sum())
            cost = self._augmented_cost(dense, assignment)
            key = (-placed, cost)
            if best_key is None or key < best_key:
                best, best_key = assignment, key
        if best is None:
            return None
        solution = solution_from_assignment(request, best)
        solution.solver_gap = float("nan")  # rounded, bound unknown
        return solution

    def _fraction_matrix(self, request: SolveRequest,
                         values: dict[str, float]) -> np.ndarray:
        """(A, S) fractional assignment weights from the LP solution."""
        problem = request.problem
        fractions = np.zeros((problem.n_applications, problem.n_servers))
        for i in range(problem.n_applications):
            for j in request.report.candidates_for(i):
                fractions[i, int(j)] = max(0.0, values.get(x_name(i, int(j)), 0.0))
        return fractions

    @staticmethod
    def _one_trial(dense: DenseCosts, fractions: np.ndarray, rng: np.random.Generator,
                   sample: bool) -> np.ndarray:
        """One rounding pass: pick a server per application, repair capacity."""
        n_apps, _ = dense.mask.shape
        assignment = np.full(n_apps, -1, dtype=int)
        capacity_left = dense.capacity.copy()
        # Most fractional mass concentrated first: applications whose LP row is
        # nearly integral are committed before genuinely contested ones.
        order = sorted(range(n_apps), key=lambda i: -float(fractions[i].max(initial=0.0)))
        for i in order:
            weights = np.where(dense.mask[i], fractions[i], 0.0)
            total = float(weights.sum())
            if total <= 0.0:
                continue
            fits = dense.mask[i] & bool_all(dense.demand[i] <= capacity_left + 1e-9)
            if not fits.any():
                continue
            j = -1
            if sample:
                pick = int(rng.choice(len(weights), p=weights / total))
                if fits[pick]:
                    j = pick
            if j < 0:
                # Deterministic repair: largest fraction among fitting servers,
                # cost as tie-break.
                ranked = np.where(fits, weights, -1.0)
                j = int(np.lexsort((dense.cost[i], -ranked))[0])
                if ranked[j] < 0.0:
                    continue
            assignment[i] = j
            capacity_left[j] -= dense.demand[i, j]
        return assignment

    @staticmethod
    def _augmented_cost(dense: DenseCosts, assignment: np.ndarray) -> float:
        """Augmented objective of a trial (assignment cost + activations)."""
        total = 0.0
        served = np.zeros(dense.capacity.shape[0], dtype=int)
        for i, j in enumerate(assignment):
            if j >= 0:
                total += float(dense.cost[i, int(j)])
                served[int(j)] += 1
        newly_on = (served > 0) & ~dense.initially_on
        return total + float(dense.activation[newly_on].sum())
