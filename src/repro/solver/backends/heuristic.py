"""Greedy construction + local-search heuristic backend.

The workhorse for large instances and tight time budgets: the shared dense
greedy kernel (:func:`repro.solver.compile.greedy_fill` — the one greedy
engine in the tree, also backing the baseline policies) followed by
best-improvement relocation local search. The construction alone is the
``greedy`` backend; the local-search phase closes most of the remaining gap
to the exact solve by relocating applications whenever the move lowers the
augmented objective — including the activation saving of emptying a server
that the placement itself switched on.

The backend is deterministic (fixed iteration order, first-index argmin), so
the registry can rely on it both as the fast path and as the fallback
baseline for the other backends. Warm starts (previous epoch's placement) are
applied before the greedy fill, which makes incremental epoch re-solves cheap:
only applications whose previous server became infeasible are re-placed from
scratch, and local search then re-optimises around the seed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.solution import PlacementSolution
from repro.solver.backend import SolveRequest, solution_from_assignment
from repro.solver.compile import (
    DenseCosts,
    GreedyState,
    bool_all,
    greedy_fill,
    greedy_fill_sharded,
)
from repro.solver.registry import register_backend

#: Local-search wall-clock budget when the request carries none.
DEFAULT_LOCAL_SEARCH_BUDGET_S: float = 5.0

#: Deadline is polled every this many applications inside a pass.
_DEADLINE_STRIDE: int = 64


@register_backend("heuristic", aliases=("local-search",))
@dataclass
class GreedyLocalSearchBackend:
    """Vectorised greedy + relocation local search.

    Parameters
    ----------
    max_passes:
        Maximum number of full local-search sweeps over the applications.
    local_search:
        Disable to get the pure greedy construction (the ``greedy`` backend).
    """

    max_passes: int = 8
    local_search: bool = True
    name: str = "heuristic"
    #: These backends always return a feasible solution on their own; the
    #: registry skips the redundant heuristic-baseline run for them.
    needs_fallback: bool = False

    def solve(self, request: SolveRequest) -> PlacementSolution | None:
        state = GreedyState(request.dense())
        self._apply_warm_start(request, state)
        # The construction respects an explicit time budget (requests without
        # one keep the unbounded construction — bit-identity consumers never
        # pass a budget, so their schedule is untouched). An expired budget
        # returns the valid partial fill, flagged construction_truncated.
        construction_deadline = None if request.time_budget_s is None \
            else request.started_at + request.time_budget_s
        # The shard-aware construction path: with ``config.epoch_shards > 1``
        # the compiled epoch tensors are partitioned along the application
        # axis and filled on a worker pool — bit-identical to the serial
        # kernel by the planner's independence certificates, so backends stay
        # deterministic for every shard count.
        shards = request.config.epoch_shards
        parallel_fraction: float | None = None
        if shards > 1:
            plan = greedy_fill_sharded(state, request.problem.energy_j, shards,
                                       request.config.min_shard_apps,
                                       reconcile_mode=request.config.reconcile_mode,
                                       dispatch=request.config.dispatch,
                                       deadline=construction_deadline)
            # Surface how much of the construction actually parallelised —
            # 0.0 marks a saturated epoch that degraded to the serial kernel
            # (planner refused, or one coupled component dominated).
            parallel_fraction = plan.parallel_fraction \
                if plan is not None and plan.is_parallel else 0.0
        else:
            greedy_fill(state, request.problem.energy_j,
                        reconcile_mode=request.config.reconcile_mode,
                        deadline=construction_deadline)
        if self.local_search and not state.stats.truncated:
            self._improve(request, state)
        solution = solution_from_assignment(request, state.assignment)
        solution.shard_parallel_fraction = parallel_fraction
        # Replay-execution telemetry (diagnostics only — placements are
        # bit-identical across reconcile modes; see FillStats).
        solution.wave_count = state.stats.waves
        solution.revalidation_rate = state.stats.revalidation_rate
        solution.construction_truncated = state.stats.truncated
        return solution

    # -- construction ---------------------------------------------------------

    def _apply_warm_start(self, request: SolveRequest, state: GreedyState) -> None:
        """Seed the assignment from a previous placement, skipping stale entries.

        Malformed hints (departed apps, out-of-range servers) were already
        dropped — and counted — by the request's sanitization pass; what
        remains is well-formed, so only the epoch-specific feasibility checks
        (mask, remaining capacity) are applied here.
        """
        if not request.warm_start:
            return
        problem = request.problem
        for app_id, j in request.warm_start.items():
            i = problem.app_index(app_id)  # O(1), cached on the problem
            j = int(j)
            if not state.dense.mask[i, j] or state.assignment[i] >= 0:
                continue
            if not bool_all(state.dense.demand[i, j] <= state.capacity_left[j] + 1e-9):
                continue
            state.place(i, j)

    # -- local search ----------------------------------------------------------

    def _improve(self, request: SolveRequest, state: GreedyState) -> None:
        """Best-improvement relocation sweeps until convergence or deadline."""
        deadline = request.deadline(DEFAULT_LOCAL_SEARCH_BUDGET_S)
        if time.monotonic() >= deadline:
            return
        dense = state.dense
        n_apps = len(state.assignment)
        for _ in range(self.max_passes):
            improved = False
            for i in range(n_apps):
                if i % _DEADLINE_STRIDE == 0 and time.monotonic() >= deadline:
                    return
                if self._relocate(i, state, dense):
                    improved = True
            if not improved:
                return

    def _relocate(self, i: int, state: GreedyState, dense: DenseCosts) -> bool:
        """Move application ``i`` to the server with the best cost delta, if any."""
        j0 = int(state.assignment[i])
        feasible = dense.mask[i] & dense.fits(i, state.capacity_left)
        if j0 >= 0:
            feasible[j0] = True  # staying put is always allowed
        if not feasible.any():
            return False
        served_without = state.served.copy()
        if j0 >= 0:
            served_without[j0] -= 1
        # Cost of hosting i on each server, counting servers this move would
        # newly switch on (a server only i occupies stops counting).
        activation_pay = dense.activation * ((served_without == 0) & ~dense.initially_on)
        candidate = np.where(feasible, dense.cost[i] + activation_pay, np.inf)
        j1 = int(np.argmin(candidate))
        if not np.isfinite(candidate[j1]):
            return False
        if j0 < 0:
            # Placing a previously unplaced application always wins.
            state.place(i, j1)
            return True
        current = dense.cost[i, j0] + activation_pay[j0]
        if candidate[j1] >= current - 1e-9 or j1 == j0:
            return False
        state.move(i, j0, j1)
        return True


@register_backend("greedy")
@dataclass
class PureGreedyBackend(GreedyLocalSearchBackend):
    """Construction-only variant: the dense greedy kernel's registry face.

    Same ordering and marginal-cost rule as the full heuristic, without the
    local-search pass — so ``solver="greedy"`` keeps the one-shot greedy cost
    profile at CDN scale. This is also the engine behind the Latency-,
    Intensity-, and Energy-aware baseline policies.
    """

    local_search: bool = False
    name: str = "greedy"
