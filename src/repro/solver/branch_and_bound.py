"""Best-first branch and bound over binary variables.

The solver repeatedly solves LP relaxations (HiGHS) while fixing binary
variables along branches. It keeps a best-first frontier ordered by the node's
LP bound, prunes nodes whose bound cannot beat the incumbent, and falls back to
LP rounding when the node budget is exhausted so callers always get a feasible
answer (when one exists) together with an optimality gap.

For the placement models CarbonEdge builds, the LP relaxation is integral most
of the time (assignment-like structure), so branch and bound usually terminates
after the root node.
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass, field

from repro.solver.lp_relaxation import solve_lp_relaxation
from repro.solver.milp import MILPModel
from repro.solver.result import SolveResult, SolveStatus
from repro.solver.rounding import fractional_binaries, round_and_repair


@dataclass(order=True)
class _Node:
    bound: float
    sequence: int
    fixes: dict[str, tuple[float, float]] = field(compare=False)


@dataclass
class BranchAndBoundSolver:
    """Exact (bounded-effort) MILP solver.

    Parameters
    ----------
    max_nodes:
        Maximum number of LP relaxations solved before falling back to the
        incumbent / rounding.
    time_limit_s:
        Wall-clock limit; the solver returns the best incumbent found so far.
    integrality_tol:
        Tolerance when deciding whether a relaxation value is integral.
    rounding_groups:
        Optional "exactly-one" variable groups forwarded to the rounding
        repair heuristic (see :func:`repro.solver.rounding.round_and_repair`).
    """

    max_nodes: int = 200
    time_limit_s: float = 30.0
    integrality_tol: float = 1e-6
    rounding_groups: list[list[str]] | None = None

    def solve(self, model: MILPModel) -> SolveResult:
        """Solve ``model`` to (near-)optimality."""
        start = time.monotonic()
        binary_names = model.binary_names()

        root = solve_lp_relaxation(model)
        if root.status in (SolveStatus.INFEASIBLE, SolveStatus.UNBOUNDED, SolveStatus.ERROR):
            return root
        if root.is_integral(binary_names, tol=self.integrality_tol):
            return SolveResult(status=SolveStatus.OPTIMAL, objective=root.objective,
                               values=root.values, gap=0.0, bound=root.objective,
                               nodes_explored=1)

        best_bound = root.objective
        incumbent: SolveResult | None = None

        # Seed the incumbent with a rounded solution so pruning is effective.
        rounded = round_and_repair(model, root.values, groups=self.rounding_groups)
        if rounded.has_solution:
            incumbent = rounded

        counter = itertools.count()
        frontier: list[_Node] = [_Node(bound=root.objective, sequence=next(counter), fixes={})]
        nodes_explored = 1

        while frontier and nodes_explored < self.max_nodes:
            if time.monotonic() - start > self.time_limit_s:
                break
            node = heapq.heappop(frontier)
            if incumbent is not None and node.bound >= incumbent.objective - 1e-9:
                continue  # cannot improve on the incumbent
            relax = solve_lp_relaxation(model, extra_bounds=node.fixes)
            nodes_explored += 1
            if not relax.has_solution:
                continue
            if incumbent is not None and relax.objective >= incumbent.objective - 1e-9:
                continue
            fractional = fractional_binaries(relax.values, binary_names, tol=self.integrality_tol)
            if not fractional:
                # Integral leaf: new incumbent.
                if incumbent is None or relax.objective < incumbent.objective:
                    incumbent = SolveResult(status=SolveStatus.FEASIBLE,
                                            objective=relax.objective,
                                            values=relax.values)
                continue
            branch_var = fractional[0]
            for lo, hi in ((1.0, 1.0), (0.0, 0.0)):
                fixes = dict(node.fixes)
                fixes[branch_var] = (lo, hi)
                heapq.heappush(frontier, _Node(bound=relax.objective,
                                               sequence=next(counter), fixes=fixes))

        if incumbent is None:
            # Exhausted the budget without an integral solution; final attempt
            # via rounding of the root relaxation already failed, so report it.
            return SolveResult(status=SolveStatus.INFEASIBLE, nodes_explored=nodes_explored)

        remaining_bounds = [n.bound for n in frontier]
        lower_bound = min([best_bound, *remaining_bounds]) if remaining_bounds else best_bound
        denom = max(abs(incumbent.objective), 1e-12)
        gap = max(0.0, (incumbent.objective - lower_bound) / denom)
        proven_optimal = not frontier or gap <= 1e-9
        return SolveResult(
            status=SolveStatus.OPTIMAL if proven_optimal else SolveStatus.FEASIBLE,
            objective=incumbent.objective,
            values=incumbent.values,
            gap=0.0 if proven_optimal else gap,
            bound=incumbent.objective if proven_optimal else lower_bound,
            nodes_explored=nodes_explored,
        )
