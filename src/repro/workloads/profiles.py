"""Per-device workload profiles (the Figure 7 stand-in).

The paper profiles three ML models (EfficientNetB0, ResNet50, YOLOv4) on three
accelerators (Jetson Orin Nano, NVIDIA A2, GTX 1080) and reports per-inference
energy, GPU memory, and inference time (Figure 7), plus a CPU-based
sensor-processing application on the Xeon host. The synthetic profile table
below reproduces the orderings and ratios the paper highlights:

* per-inference energy spans ~45× across models on the same device and ~2×
  across devices for the same model (Section 6.1.1);
* the Orin Nano is the most energy-efficient, the GTX 1080 the fastest
  (Section 6.3.5) — its low inference time is what lets CarbonEdge shift more
  load despite its high power draw;
* GPU memory grows with model size and is a few hundred MB (Figure 7b);
* inference time is a few to a few tens of milliseconds (Figure 7c).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.resources import ResourceVector

#: ML model names used throughout the evaluation.
MODEL_NAMES: tuple[str, ...] = ("EfficientNetB0", "ResNet50", "YOLOv4")

#: Accelerator names with profiles (catalogue names from repro.cluster.hardware).
DEVICE_NAMES: tuple[str, ...] = ("Orin Nano", "NVIDIA A2", "GTX 1080")

#: The CPU-based sensor-processing application (runs on the Xeon host).
CPU_APP_NAME: str = "Sci"

#: Device the CPU application is profiled on.
CPU_DEVICE_NAME: str = "Xeon E5-2660v3"


@dataclass(frozen=True)
class WorkloadProfile:
    """Profile of one workload on one device.

    Parameters
    ----------
    workload:
        Model / application name.
    device:
        Device catalogue name.
    energy_per_request_j:
        Dynamic energy per inference / request, joules.
    latency_ms:
        Processing (inference) time per request, milliseconds.
    gpu_memory_mb:
        GPU memory footprint (0 for CPU workloads).
    cpu_cores:
        Host CPU cores pinned by the deployment.
    memory_mb:
        Host memory footprint.
    """

    workload: str
    device: str
    energy_per_request_j: float
    latency_ms: float
    gpu_memory_mb: float
    cpu_cores: float = 1.0
    memory_mb: float = 2048.0

    def __post_init__(self) -> None:
        if self.energy_per_request_j <= 0:
            raise ValueError(f"{self.workload}@{self.device}: energy must be positive")
        if self.latency_ms <= 0:
            raise ValueError(f"{self.workload}@{self.device}: latency must be positive")
        if self.gpu_memory_mb < 0 or self.cpu_cores < 0 or self.memory_mb < 0:
            raise ValueError(f"{self.workload}@{self.device}: resources must be non-negative")

    @property
    def resource_demand(self) -> ResourceVector:
        """Resource vector a single deployment of this workload occupies (R^k_ij)."""
        return ResourceVector.of(
            cpu_cores=self.cpu_cores,
            memory_mb=self.memory_mb,
            gpu_memory_mb=self.gpu_memory_mb,
        )

    def max_request_rate(self) -> float:
        """Requests/second one deployment can sustain (1 / inference time)."""
        return 1000.0 / self.latency_ms

    def energy_per_hour_j(self, request_rate_rps: float) -> float:
        """Dynamic energy per hour at the given request rate, joules."""
        if request_rate_rps < 0:
            raise ValueError("request_rate_rps must be non-negative")
        return self.energy_per_request_j * request_rate_rps * 3600.0


def _p(workload: str, device: str, energy_j: float, latency_ms: float, gpu_mb: float,
       cpu_cores: float = 1.0, memory_mb: float = 2048.0) -> WorkloadProfile:
    return WorkloadProfile(workload=workload, device=device, energy_per_request_j=energy_j,
                           latency_ms=latency_ms, gpu_memory_mb=gpu_mb,
                           cpu_cores=cpu_cores, memory_mb=memory_mb)


#: The full profile table keyed by (workload, device).
PROFILE_TABLE: dict[tuple[str, str], WorkloadProfile] = {
    (p.workload, p.device): p for p in (
        # EfficientNetB0: smallest model — lowest energy, modest memory.
        _p("EfficientNetB0", "Orin Nano", 0.050, 8.0, 180.0),
        _p("EfficientNetB0", "NVIDIA A2", 0.072, 4.2, 220.0),
        _p("EfficientNetB0", "GTX 1080", 0.110, 2.6, 260.0),
        # ResNet50: mid-sized classifier.
        _p("ResNet50", "Orin Nano", 0.170, 16.0, 260.0),
        _p("ResNet50", "NVIDIA A2", 0.230, 7.5, 300.0),
        _p("ResNet50", "GTX 1080", 0.360, 4.1, 340.0),
        # YOLOv4: detection model — ~45x the energy of EfficientNetB0.
        _p("YOLOv4", "Orin Nano", 2.20, 38.0, 430.0),
        _p("YOLOv4", "NVIDIA A2", 2.90, 18.5, 480.0),
        _p("YOLOv4", "GTX 1080", 4.40, 10.2, 520.0),
        # CPU-based sensor-processing application (numpy pipeline on the Xeon).
        _p(CPU_APP_NAME, CPU_DEVICE_NAME, 9.0, 52.0, 0.0, cpu_cores=4.0, memory_mb=4096.0),
    )
}


def get_profile(workload: str, device: str) -> WorkloadProfile:
    """Look up the profile for a (workload, device) pair."""
    try:
        return PROFILE_TABLE[(workload, device)]
    except KeyError:
        known = sorted({w for w, _ in PROFILE_TABLE})
        raise KeyError(
            f"no profile for workload {workload!r} on device {device!r}; "
            f"known workloads: {known}") from None


def profiles_for_model(workload: str) -> dict[str, WorkloadProfile]:
    """All device profiles for one workload, keyed by device name."""
    out = {device: profile for (w, device), profile in PROFILE_TABLE.items() if w == workload}
    if not out:
        raise KeyError(f"no profiles for workload {workload!r}")
    return out


def energy_spread_across_models(device: str) -> float:
    """Max/min per-request energy ratio across ML models on one device (paper: ~45x)."""
    energies = [get_profile(m, device).energy_per_request_j for m in MODEL_NAMES]
    return max(energies) / min(energies)


def energy_spread_across_devices(workload: str) -> float:
    """Max/min per-request energy ratio across devices for one model (paper: ~2x)."""
    energies = [get_profile(workload, d).energy_per_request_j for d in DEVICE_NAMES]
    return max(energies) / min(energies)
