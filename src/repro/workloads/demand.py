"""Demand and capacity distributions (Section 6.3.4).

The paper uses city population as a proxy for both workload demand ("locations
with high populations typically have high demand") and provider capacity
("edge providers tend to increase their capacities near them"). These helpers
turn the city catalogue's populations into normalised weights used by the
application generator (demand scenario) and the CDN fleet builder (capacity
scenario), plus the homogeneous baseline.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.cities import CityCatalog, default_city_catalog


def population_weights(site_names: list[str],
                       catalog: CityCatalog | None = None) -> dict[str, float]:
    """Normalised population share per site (sums to 1)."""
    if not site_names:
        raise ValueError("site_names must not be empty")
    catalog = catalog or default_city_catalog()
    pops = np.array([catalog.get(name).population_k for name in site_names], dtype=float)
    total = pops.sum()
    if total <= 0:
        raise ValueError("total population must be positive")
    return {name: float(p / total) for name, p in zip(site_names, pops)}


def uniform_weights(site_names: list[str]) -> dict[str, float]:
    """Equal weight per site (the paper's homogeneous scenario)."""
    if not site_names:
        raise ValueError("site_names must not be empty")
    w = 1.0 / len(site_names)
    return {name: w for name in site_names}


def demand_per_site(site_names: list[str], total_demand: float,
                    weights: dict[str, float] | None = None,
                    catalog: CityCatalog | None = None) -> dict[str, float]:
    """Split a total demand (e.g. applications per batch) across sites by weight."""
    if total_demand < 0:
        raise ValueError("total_demand must be non-negative")
    weights = weights or population_weights(site_names, catalog)
    missing = [s for s in site_names if s not in weights]
    if missing:
        raise KeyError(f"weights missing for sites: {missing}")
    total_weight = sum(weights[s] for s in site_names)
    return {s: total_demand * weights[s] / total_weight for s in site_names}


def capacity_weights_from_population(site_names: list[str],
                                     catalog: CityCatalog | None = None,
                                     floor: float = 0.25) -> dict[str, float]:
    """Relative capacity multiplier per site, proportional to population.

    The multipliers have mean 1 (so total fleet capacity is preserved) and are
    floored at ``floor`` so small cities keep at least a minimal deployment.
    """
    catalog = catalog or default_city_catalog()
    pops = np.array([catalog.get(name).population_k for name in site_names], dtype=float)
    mean_pop = pops.mean()
    if mean_pop <= 0:
        raise ValueError("mean population must be positive")
    raw = np.maximum(pops / mean_pop, floor)
    # Re-normalise to mean 1 after flooring.
    raw = raw / raw.mean()
    return {name: float(v) for name, v in zip(site_names, raw)}
