"""Request-level load generation (the Locust stand-in for the emulated testbed).

The testbed experiments drive each deployed application with a stream of
inference/processing requests and measure per-request response time and energy.
:func:`generate_request_load` produces the request timestamps for an open-loop
(Poisson) arrival process over an experiment window.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import substream


@dataclass
class RequestLoad:
    """Request arrival times for one application over an experiment window."""

    app_id: str
    arrival_times_s: np.ndarray
    duration_s: float

    def __post_init__(self) -> None:
        self.arrival_times_s = np.asarray(self.arrival_times_s, dtype=float)
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.arrival_times_s.ndim != 1:
            raise ValueError("arrival_times_s must be 1-D")
        if len(self.arrival_times_s) and (
                self.arrival_times_s.min() < 0 or self.arrival_times_s.max() > self.duration_s):
            raise ValueError("arrival times must lie within [0, duration_s]")

    def __len__(self) -> int:
        return len(self.arrival_times_s)

    @property
    def mean_rate_rps(self) -> float:
        """Observed mean request rate over the window."""
        return len(self.arrival_times_s) / self.duration_s

    def requests_in_window(self, start_s: float, end_s: float) -> int:
        """Number of requests arriving within [start_s, end_s)."""
        if end_s < start_s:
            raise ValueError("end_s must be >= start_s")
        return int(np.count_nonzero(
            (self.arrival_times_s >= start_s) & (self.arrival_times_s < end_s)))

    def hourly_counts(self) -> np.ndarray:
        """Requests per hour over the window (length = ceil(duration / 3600))."""
        n_hours = int(np.ceil(self.duration_s / 3600.0))
        edges = np.arange(n_hours + 1) * 3600.0
        counts, _ = np.histogram(self.arrival_times_s, bins=edges)
        return counts


def generate_request_load(app_id: str, rate_rps: float, duration_s: float,
                          seed: int = 0) -> RequestLoad:
    """Generate a Poisson (open-loop) request arrival process.

    Parameters
    ----------
    app_id:
        Application the load belongs to (also seeds the stream).
    rate_rps:
        Mean request rate, requests per second.
    duration_s:
        Window length in seconds.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    rng = substream(seed, "request-load", app_id)
    expected = rate_rps * duration_s
    n = int(rng.poisson(expected))
    times = np.sort(rng.uniform(0.0, duration_s, size=n))
    return RequestLoad(app_id=app_id, arrival_times_s=times, duration_s=float(duration_s))
