"""Application specifications consumed by the placement policies.

An :class:`Application` is one deployable edge workload instance: it has a
source city (where its users are), a latency SLO, a request rate, and a
workload type whose per-device profiles determine both its resource demand
R^k_ij and its energy consumption E_ij on each candidate server (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.resources import ResourceVector
from repro.cluster.server import EdgeServer
from repro.workloads.profiles import WorkloadProfile, get_profile


@dataclass(frozen=True)
class Application:
    """A single edge application to be placed.

    Parameters
    ----------
    app_id:
        Unique identifier.
    workload:
        Workload type (e.g. ``"ResNet50"`` or ``"Sci"``); must have a profile
        for every candidate device.
    source_site:
        City/site the application's users are attached to.
    latency_slo_ms:
        Maximum tolerated **round-trip** network latency between the source
        site and the hosting server (the paper's default is 20 ms ≈ 500 km).
    request_rate_rps:
        Sustained request rate the deployment must serve.
    duration_hours:
        Placement horizon used when converting rates to energy (E_ij).
    """

    app_id: str
    workload: str
    source_site: str
    latency_slo_ms: float = 20.0
    request_rate_rps: float = 10.0
    duration_hours: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_slo_ms <= 0:
            raise ValueError(f"{self.app_id}: latency_slo_ms must be positive")
        if self.request_rate_rps <= 0:
            raise ValueError(f"{self.app_id}: request_rate_rps must be positive")
        if self.duration_hours <= 0:
            raise ValueError(f"{self.app_id}: duration_hours must be positive")

    @property
    def one_way_latency_slo_ms(self) -> float:
        """One-way latency budget (half the round-trip SLO)."""
        return self.latency_slo_ms / 2.0

    def profile_on(self, server: EdgeServer) -> WorkloadProfile:
        """The workload profile on the server's accelerator, falling back to its CPU.

        GPU workloads resolve against the server's accelerator; CPU workloads
        (e.g. the sensor-processing ``"Sci"`` application) have no GPU profile
        and resolve against the host CPU instead.
        """
        devices = []
        if server.accelerator is not None:
            devices.append(server.accelerator.name)
        devices.append(server.cpu.name)
        for device in devices:
            try:
                return get_profile(self.workload, device)
            except KeyError:
                continue
        raise KeyError(
            f"workload {self.workload!r} has no profile for any device of server "
            f"{server.server_id!r} (tried {devices})")

    def resource_demand_on(self, server: EdgeServer) -> ResourceVector:
        """R^k_ij: resource demand of this application on ``server``.

        The GPU memory footprint is device-specific; the number of deployment
        replicas needed to sustain the request rate scales the demand when the
        rate exceeds what a single replica can serve.
        """
        profile = self.profile_on(server)
        replicas = max(1, int(-(-self.request_rate_rps // profile.max_request_rate())))
        return profile.resource_demand * float(replicas)

    def energy_on(self, server: EdgeServer) -> float:
        """E_ij: dynamic energy (joules) of running on ``server`` for the horizon."""
        profile = self.profile_on(server)
        return profile.energy_per_hour_j(self.request_rate_rps) * self.duration_hours

    def processing_latency_on(self, server: EdgeServer) -> float:
        """Per-request processing (inference) latency on ``server``, milliseconds."""
        return self.profile_on(server).latency_ms

    def supports_server(self, server: EdgeServer) -> bool:
        """Whether a profile exists for this workload on the server's device."""
        try:
            self.profile_on(server)
        except KeyError:
            return False
        return True


def make_application(app_id: str, workload: str, source_site: str,
                     latency_slo_ms: float = 20.0, request_rate_rps: float = 10.0,
                     duration_hours: float = 1.0) -> Application:
    """Convenience constructor mirroring :class:`Application`'s signature."""
    return Application(app_id=app_id, workload=workload, source_site=source_site,
                       latency_slo_ms=latency_slo_ms, request_rate_rps=request_rate_rps,
                       duration_hours=duration_hours)
