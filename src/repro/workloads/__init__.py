"""Workload substrate: application specs, device profiles, and load generators.

The paper evaluates two workload classes (Section 6.1.1): a CPU-based edge
sensor-processing application and GPU model-serving applications
(EfficientNetB0, ResNet50, YOLOv4) profiled on three accelerators. This package
provides those profiles, the application specification the placement policies
consume (latency SLO, resource demand, and energy per server type), arrival
generators for the CDN simulation, and request-level load for the emulated
testbed.
"""

from repro.workloads.profiles import (
    WorkloadProfile,
    PROFILE_TABLE,
    MODEL_NAMES,
    DEVICE_NAMES,
    CPU_APP_NAME,
    get_profile,
    profiles_for_model,
)
from repro.workloads.application import Application, make_application
from repro.workloads.generator import (
    ApplicationBatch,
    ApplicationGenerator,
    ArrivalBatch,
    LazyApplications,
    columnar_enabled,
)
from repro.workloads.requests import RequestLoad, generate_request_load
from repro.workloads.demand import (
    population_weights,
    uniform_weights,
    demand_per_site,
    capacity_weights_from_population,
)

__all__ = [
    "WorkloadProfile",
    "PROFILE_TABLE",
    "MODEL_NAMES",
    "DEVICE_NAMES",
    "CPU_APP_NAME",
    "get_profile",
    "profiles_for_model",
    "Application",
    "make_application",
    "ApplicationBatch",
    "ApplicationGenerator",
    "ArrivalBatch",
    "LazyApplications",
    "columnar_enabled",
    "RequestLoad",
    "generate_request_load",
    "population_weights",
    "uniform_weights",
    "demand_per_site",
    "capacity_weights_from_population",
]
