"""Application arrival generation for the trace-driven simulations.

In the CDN scenario "edge applications arrive at edge data centers over time"
(Section 6.3); CarbonEdge batches newly arriving applications and places each
batch incrementally (Algorithm 1). :class:`ApplicationGenerator` produces those
batches: the number of arrivals per batch follows a Poisson distribution, the
source site of each application is drawn from a (possibly population-weighted)
site distribution, and the workload type from a configurable mix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.utils.rng import substream
from repro.workloads.application import Application


@dataclass(frozen=True)
class ArrivalBatch:
    """A batch of applications arriving in one placement interval."""

    interval_index: int
    hour_of_year: int
    applications: tuple[Application, ...]

    def __len__(self) -> int:
        return len(self.applications)


@dataclass
class ApplicationGenerator:
    """Generates batched application arrivals for a set of source sites.

    Parameters
    ----------
    sites:
        Candidate source sites (cities).
    site_weights:
        Optional arrival weights per site (e.g. population shares); uniform
        when omitted. Must align with ``sites``.
    workload_mix:
        Mapping of workload name to arrival probability (normalised).
    mean_arrivals_per_batch:
        Poisson mean of the number of applications arriving per batch.
    latency_slo_ms:
        Round-trip latency SLO given to every generated application.
    request_rate_rps:
        Request rate per application.
    duration_hours:
        Placement horizon passed to the applications.
    seed:
        Root seed of the deterministic generation stream.
    """

    sites: Sequence[str]
    site_weights: Sequence[float] | None = None
    workload_mix: dict[str, float] = field(default_factory=lambda: {"ResNet50": 1.0})
    mean_arrivals_per_batch: float = 10.0
    latency_slo_ms: float = 20.0
    request_rate_rps: float = 10.0
    duration_hours: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        self.sites = list(self.sites)
        if not self.sites:
            raise ValueError("ApplicationGenerator requires at least one site")
        if self.site_weights is not None:
            weights = np.asarray(list(self.site_weights), dtype=float)
            if len(weights) != len(self.sites):
                raise ValueError("site_weights must align with sites")
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError("site_weights must be non-negative with a positive sum")
            self._site_probs = weights / weights.sum()
        else:
            self._site_probs = np.full(len(self.sites), 1.0 / len(self.sites))
        if not self.workload_mix:
            raise ValueError("workload_mix must not be empty")
        mix_total = sum(self.workload_mix.values())
        if mix_total <= 0:
            raise ValueError("workload_mix probabilities must sum to a positive value")
        self._workloads = list(self.workload_mix)
        self._workload_probs = np.array(
            [self.workload_mix[w] / mix_total for w in self._workloads])
        if self.mean_arrivals_per_batch <= 0:
            raise ValueError("mean_arrivals_per_batch must be positive")

    def generate_batch(self, interval_index: int, hour_of_year: int,
                       n_arrivals: int | None = None) -> ArrivalBatch:
        """Generate one arrival batch for the given placement interval."""
        rng = substream(self.seed, "arrivals", interval_index)
        count = int(n_arrivals) if n_arrivals is not None else int(
            rng.poisson(self.mean_arrivals_per_batch))
        apps: list[Application] = []
        if count > 0:
            site_idx = rng.choice(len(self.sites), size=count, p=self._site_probs)
            workload_idx = rng.choice(len(self._workloads), size=count, p=self._workload_probs)
            for k in range(count):
                apps.append(Application(
                    app_id=f"app-{interval_index:05d}-{k:04d}",
                    workload=self._workloads[int(workload_idx[k])],
                    source_site=str(self.sites[int(site_idx[k])]),
                    latency_slo_ms=self.latency_slo_ms,
                    request_rate_rps=self.request_rate_rps,
                    duration_hours=self.duration_hours,
                ))
        return ArrivalBatch(interval_index=interval_index, hour_of_year=hour_of_year,
                            applications=tuple(apps))

    def generate_schedule(self, n_batches: int, start_hour: int = 0,
                          hours_per_batch: int = 1) -> list[ArrivalBatch]:
        """Generate a full schedule of ``n_batches`` consecutive arrival batches."""
        if n_batches <= 0:
            raise ValueError("n_batches must be positive")
        if hours_per_batch <= 0:
            raise ValueError("hours_per_batch must be positive")
        return [
            self.generate_batch(i, (start_hour + i * hours_per_batch) % 8760)
            for i in range(n_batches)
        ]
