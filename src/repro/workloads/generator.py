"""Application arrival generation for the trace-driven simulations.

In the CDN scenario "edge applications arrive at edge data centers over time"
(Section 6.3); CarbonEdge batches newly arriving applications and places each
batch incrementally (Algorithm 1). :class:`ApplicationGenerator` produces those
batches: the number of arrivals per batch follows a Poisson distribution, the
source site of each application is drawn from a (possibly population-weighted)
site distribution, and the workload type from a configurable mix.

Batches are **columnar** (struct-of-arrays): :class:`ApplicationBatch` holds
per-application index/value arrays plus a deduplicated **class table** — one
row per unique ``(site, workload, slo, rate, duration)`` combination — so the
compilation tier can build tensors per unique class and expand them with one
fancy-index gather instead of iterating applications. Per-app
:class:`~repro.workloads.application.Application` objects remain available as
a lazy compatibility view (``batch.applications``) that is never materialised
on the fast path. ``CARBON_EDGE_DISABLE_COLUMNAR=1`` forces every consumer
back onto the per-object path; both paths are bit-identical by contract.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.utils.rng import substream
from repro.workloads.application import Application

#: Kill-switch: set to ``1``/``true``/``yes``/``on`` to force consumers of
#: :class:`ApplicationBatch` back onto the per-``Application``-object path.
#: The columnar path is bit-identical by contract (same app ids, same compiled
#: tensors, byte-identical artifacts), so this exists for A/B verification and
#: as an escape hatch, not as a semantic switch.
COLUMNAR_ENV = "CARBON_EDGE_DISABLE_COLUMNAR"


def columnar_enabled() -> bool:
    """Whether the columnar fast path is active (it is unless force-disabled)."""
    return os.environ.get(COLUMNAR_ENV, "").strip().lower() not in (
        "1", "true", "yes", "on")


def app_id_pad_width(count: int) -> int:
    """Zero-pad width for formulaic per-batch app ids.

    Wide enough that lexicographic id order equals arrival order for any batch
    size; never narrower than the historical ``:04d`` so every batch of fewer
    than 10^4+1 arrivals keeps its exact historical ids (artifact stability).
    """
    return max(4, len(str(max(count - 1, 0))))


def _as_per_app(values: float | np.ndarray, count: int, name: str) -> np.ndarray:
    """Broadcast a scalar (or validate an array) to a per-app float column."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim == 0:
        return np.full(count, float(arr))
    if arr.shape != (count,):
        raise ValueError(f"{name} must be scalar or shape ({count},), got {arr.shape}")
    return arr


@dataclass(eq=False)
class ApplicationBatch:
    """A batch of applications arriving in one placement interval, columnar.

    Per-application state lives in parallel arrays (``site_idx``,
    ``workload_idx``, ``latency_slo_ms``, ``request_rate_rps``,
    ``duration_hours``; all length ``len(self)``), with names interned once in
    ``site_names``/``workload_names``. The **class table** dedupes those rows:
    ``class_idx[k]`` maps application ``k`` to its row in the
    ``class_site_idx``/``class_workload_idx``/``class_slo_ms``/
    ``class_rate_rps``/``class_duration_h`` columns, and ``class_counts`` is
    the per-class histogram. Class rows are sorted lexicographically by
    ``(site_idx, workload_idx, slo, rate, duration)``.

    ``applications`` materialises the per-object view on first access (cached);
    consumers that only need ids, counts, or the class partition should stay on
    the arrays.
    """

    interval_index: int
    hour_of_year: int
    site_names: tuple[str, ...]
    workload_names: tuple[str, ...]
    site_idx: np.ndarray
    workload_idx: np.ndarray
    latency_slo_ms: np.ndarray
    request_rate_rps: np.ndarray
    duration_hours: np.ndarray
    class_idx: np.ndarray
    class_site_idx: np.ndarray
    class_workload_idx: np.ndarray
    class_slo_ms: np.ndarray
    class_rate_rps: np.ndarray
    class_duration_h: np.ndarray
    class_counts: np.ndarray
    #: Explicit per-app ids (e.g. live arrivals); ``None`` means the formulaic
    #: ``app-{interval:05d}-{k:0{pad}d}`` scheme, which is fully determined by
    #: ``(interval_index, len(self))``.
    explicit_ids: tuple[str, ...] | None = None
    _apps: tuple[Application, ...] | None = field(
        default=None, repr=False, compare=False)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_columns(cls, *, interval_index: int, hour_of_year: int,
                     site_names: Sequence[str], workload_names: Sequence[str],
                     site_idx: np.ndarray, workload_idx: np.ndarray,
                     latency_slo_ms: float | np.ndarray,
                     request_rate_rps: float | np.ndarray,
                     duration_hours: float | np.ndarray,
                     explicit_ids: Sequence[str] | None = None,
                     ) -> "ApplicationBatch":
        """Build a batch from per-app columns, computing the class table."""
        site_idx = np.asarray(site_idx, dtype=np.int64)
        workload_idx = np.asarray(workload_idx, dtype=np.int64)
        count = len(site_idx)
        if len(workload_idx) != count:
            raise ValueError("site_idx and workload_idx must have equal length")
        if explicit_ids is not None and len(explicit_ids) != count:
            raise ValueError("explicit_ids must align with the per-app columns")
        slo = _as_per_app(latency_slo_ms, count, "latency_slo_ms")
        rate = _as_per_app(request_rate_rps, count, "request_rate_rps")
        dur = _as_per_app(duration_hours, count, "duration_hours")

        n_workloads = max(len(workload_names), 1)
        uniform_values = count > 0 and (
            np.ptp(slo) == 0.0 and np.ptp(rate) == 0.0 and np.ptp(dur) == 0.0)
        if count == 0:
            class_idx = np.zeros(0, dtype=np.int64)
            c_site = np.zeros(0, dtype=np.int64)
            c_workload = np.zeros(0, dtype=np.int64)
            c_slo = np.zeros(0)
            c_rate = np.zeros(0)
            c_dur = np.zeros(0)
            counts = np.zeros(0, dtype=np.int64)
        elif uniform_values:
            # Common case (all value columns scalar): dedupe on an integer
            # (site, workload) code — much faster than a row-wise unique, and
            # the sort order (lexicographic by site then workload) matches the
            # general path's because the trailing value columns are constant.
            code = site_idx * n_workloads + workload_idx
            uniq, class_idx, counts = np.unique(
                code, return_inverse=True, return_counts=True)
            c_site = uniq // n_workloads
            c_workload = uniq % n_workloads
            c_slo = np.full(len(uniq), slo[0])
            c_rate = np.full(len(uniq), rate[0])
            c_dur = np.full(len(uniq), dur[0])
        else:
            rows = np.column_stack(
                [site_idx.astype(float), workload_idx.astype(float), slo, rate, dur])
            uniq, class_idx, counts = np.unique(
                rows, axis=0, return_inverse=True, return_counts=True)
            class_idx = class_idx.reshape(count)
            c_site = uniq[:, 0].astype(np.int64)
            c_workload = uniq[:, 1].astype(np.int64)
            c_slo = uniq[:, 2].copy()
            c_rate = uniq[:, 3].copy()
            c_dur = uniq[:, 4].copy()
        return cls(
            interval_index=int(interval_index), hour_of_year=int(hour_of_year),
            site_names=tuple(str(s) for s in site_names),
            workload_names=tuple(str(w) for w in workload_names),
            site_idx=site_idx, workload_idx=workload_idx,
            latency_slo_ms=slo, request_rate_rps=rate, duration_hours=dur,
            class_idx=np.asarray(class_idx, dtype=np.int64),
            class_site_idx=c_site, class_workload_idx=c_workload,
            class_slo_ms=c_slo, class_rate_rps=c_rate, class_duration_h=c_dur,
            class_counts=np.asarray(counts, dtype=np.int64),
            explicit_ids=tuple(explicit_ids) if explicit_ids is not None else None,
        )

    @classmethod
    def from_applications(cls, applications: Sequence[Application],
                          interval_index: int = 0,
                          hour_of_year: int = 0) -> "ApplicationBatch":
        """Wrap existing per-object applications in a columnar batch.

        The original objects are kept as the materialised view, so
        ``batch.applications`` returns them *by identity* — consumers that
        round-trip through the batch (e.g. the serving service) see the exact
        objects they put in.
        """
        apps = tuple(applications)
        site_table: dict[str, int] = {}
        workload_table: dict[str, int] = {}
        site_idx = np.fromiter(
            (site_table.setdefault(a.source_site, len(site_table)) for a in apps),
            dtype=np.int64, count=len(apps))
        workload_idx = np.fromiter(
            (workload_table.setdefault(a.workload, len(workload_table)) for a in apps),
            dtype=np.int64, count=len(apps))
        batch = cls.from_columns(
            interval_index=interval_index, hour_of_year=hour_of_year,
            site_names=tuple(site_table), workload_names=tuple(workload_table),
            site_idx=site_idx, workload_idx=workload_idx,
            latency_slo_ms=np.array([a.latency_slo_ms for a in apps]),
            request_rate_rps=np.array([a.request_rate_rps for a in apps]),
            duration_hours=np.array([a.duration_hours for a in apps]),
            explicit_ids=tuple(a.app_id for a in apps))
        batch._apps = apps
        return batch

    # -- size / identity -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.site_idx)

    @property
    def n_classes(self) -> int:
        """Number of unique application classes in the batch."""
        return len(self.class_counts)

    @property
    def id_pad_width(self) -> int:
        """Zero-pad width of the formulaic per-batch application ids."""
        return app_id_pad_width(len(self))

    def app_id(self, k: int) -> str:
        """Id of application ``k`` (explicit if provided, else formulaic)."""
        if self.explicit_ids is not None:
            return self.explicit_ids[k]
        return f"app-{self.interval_index:05d}-{k:0{self.id_pad_width}d}"

    def app_ids(self) -> tuple[str, ...]:
        """All application ids in arrival order."""
        if self.explicit_ids is not None:
            return self.explicit_ids
        pad = self.id_pad_width
        prefix = f"app-{self.interval_index:05d}-"
        return tuple(f"{prefix}{k:0{pad}d}" for k in range(len(self)))

    def class_first_occurrence(self) -> np.ndarray:
        """Index of the first application of each class, in class-table order.

        ``argsort`` of this array yields the classes in first-arrival order —
        the order a per-app loop over the batch would first encounter them,
        which the compilation tier uses to register classes identically to the
        object path.
        """
        order = np.argsort(self.class_idx, kind="stable")
        starts = np.searchsorted(self.class_idx[order], np.arange(self.n_classes))
        return order[starts]

    # -- per-object compatibility view ---------------------------------------

    @property
    def applications(self) -> tuple[Application, ...]:
        """Per-object view of the batch (materialised on first access, cached)."""
        if self._apps is None:
            self._apps = tuple(self.application(k) for k in range(len(self)))
        return self._apps

    def application(self, k: int) -> Application:
        """Materialise the ``Application`` object for arrival ``k``."""
        if self._apps is not None:
            return self._apps[k]
        return Application(
            app_id=self.app_id(k),
            workload=self.workload_names[int(self.workload_idx[k])],
            source_site=self.site_names[int(self.site_idx[k])],
            latency_slo_ms=float(self.latency_slo_ms[k]),
            request_rate_rps=float(self.request_rate_rps[k]),
            duration_hours=float(self.duration_hours[k]),
        )

    def subset(self, indices: Sequence[int] | np.ndarray) -> list[Application]:
        """Materialise the applications at ``indices`` (arrival positions)."""
        if self._apps is not None:
            return [self._apps[int(i)] for i in indices]
        return [self.application(int(i)) for i in indices]


#: Historical name for the arrival-batch type; ``generate_batch`` has returned
#: the columnar :class:`ApplicationBatch` since the substrate went
#: struct-of-arrays, and the old per-object dataclass is gone.
ArrivalBatch = ApplicationBatch


class LazyApplications(Sequence):
    """Sequence view over a batch's applications that defers materialisation.

    :class:`~repro.core.problem.PlacementProblem` instances assembled from a
    columnar batch carry this instead of a list, so the per-object view is
    only built if something actually indexes or iterates the applications
    (metrics formatting, cold fallbacks) — never during tensor assembly.
    """

    __slots__ = ("batch",)

    def __init__(self, batch: ApplicationBatch) -> None:
        self.batch = batch

    def __len__(self) -> int:
        return len(self.batch)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return list(self.batch.applications[index])
        return self.batch.applications[index]

    def __iter__(self) -> Iterator[Application]:
        return iter(self.batch.applications)


@dataclass
class ApplicationGenerator:
    """Generates batched application arrivals for a set of source sites.

    Parameters
    ----------
    sites:
        Candidate source sites (cities).
    site_weights:
        Optional arrival weights per site (e.g. population shares); uniform
        when omitted. Must align with ``sites``.
    workload_mix:
        Mapping of workload name to arrival probability (normalised).
    mean_arrivals_per_batch:
        Poisson mean of the number of applications arriving per batch.
    latency_slo_ms:
        Round-trip latency SLO given to every generated application.
    request_rate_rps:
        Request rate per application.
    duration_hours:
        Placement horizon passed to the applications.
    seed:
        Root seed of the deterministic generation stream.
    """

    sites: Sequence[str]
    site_weights: Sequence[float] | None = None
    workload_mix: dict[str, float] = field(default_factory=lambda: {"ResNet50": 1.0})
    mean_arrivals_per_batch: float = 10.0
    latency_slo_ms: float = 20.0
    request_rate_rps: float = 10.0
    duration_hours: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        self.sites = list(self.sites)
        if not self.sites:
            raise ValueError("ApplicationGenerator requires at least one site")
        if self.site_weights is not None:
            weights = np.asarray(list(self.site_weights), dtype=float)
            if len(weights) != len(self.sites):
                raise ValueError("site_weights must align with sites")
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError("site_weights must be non-negative with a positive sum")
            self._site_probs = weights / weights.sum()
        else:
            self._site_probs = np.full(len(self.sites), 1.0 / len(self.sites))
        if not self.workload_mix:
            raise ValueError("workload_mix must not be empty")
        mix_total = sum(self.workload_mix.values())
        if mix_total <= 0:
            raise ValueError("workload_mix probabilities must sum to a positive value")
        self._workloads = list(self.workload_mix)
        self._workload_probs = np.array(
            [self.workload_mix[w] / mix_total for w in self._workloads])
        if self.mean_arrivals_per_batch <= 0:
            raise ValueError("mean_arrivals_per_batch must be positive")
        self._site_names = tuple(str(s) for s in self.sites)
        self._workload_names = tuple(self._workloads)

    def generate_batch(self, interval_index: int, hour_of_year: int,
                       n_arrivals: int | None = None) -> ApplicationBatch:
        """Generate one arrival batch for the given placement interval.

        The rng draw sequence (Poisson count, then the site and workload
        ``choice`` vectors) is unchanged from the historical per-object
        generator, so the arrays — and the lazy per-object view built from
        them — are bit-identical to what the old loop produced.
        """
        rng = substream(self.seed, "arrivals", interval_index)
        count = int(n_arrivals) if n_arrivals is not None else int(
            rng.poisson(self.mean_arrivals_per_batch))
        if count > 0:
            site_idx = rng.choice(len(self.sites), size=count, p=self._site_probs)
            workload_idx = rng.choice(len(self._workloads), size=count,
                                      p=self._workload_probs)
        else:
            site_idx = np.zeros(0, dtype=np.int64)
            workload_idx = np.zeros(0, dtype=np.int64)
        return ApplicationBatch.from_columns(
            interval_index=interval_index, hour_of_year=hour_of_year,
            site_names=self._site_names, workload_names=self._workload_names,
            site_idx=site_idx, workload_idx=workload_idx,
            latency_slo_ms=self.latency_slo_ms,
            request_rate_rps=self.request_rate_rps,
            duration_hours=self.duration_hours)

    def generate_schedule(self, n_batches: int, start_hour: int = 0,
                          hours_per_batch: int = 1) -> list[ApplicationBatch]:
        """Generate a full schedule of ``n_batches`` consecutive arrival batches."""
        if n_batches <= 0:
            raise ValueError("n_batches must be positive")
        if hours_per_batch <= 0:
            raise ValueError("hours_per_batch must be positive")
        return [
            self.generate_batch(i, (start_hour + i * hours_per_batch) % 8760)
            for i in range(n_batches)
        ]
