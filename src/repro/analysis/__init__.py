"""Mesoscale carbon analysis (Section 3) and savings reporting helpers."""

from repro.analysis.mesoscale import (
    RegionSnapshot,
    region_snapshot,
    yearly_region_stats,
    radius_savings_analysis,
    radius_latency_analysis,
    savings_cdf,
)
from repro.analysis.savings import carbon_savings_pct, PolicyComparison, compare_solutions
from repro.analysis.reporting import format_table, format_cdf, format_series

__all__ = [
    "RegionSnapshot",
    "region_snapshot",
    "yearly_region_stats",
    "radius_savings_analysis",
    "radius_latency_analysis",
    "savings_cdf",
    "carbon_savings_pct",
    "PolicyComparison",
    "compare_solutions",
    "format_table",
    "format_cdf",
    "format_series",
]
