"""Mesoscale carbon-intensity analysis (the paper's Section 3).

Two analyses are implemented:

* **Regional** (Section 3.1 / Figures 2–4): per-hour spatial snapshots and
  yearly statistics of the five-zone mesoscale regions.
* **Continental** (Section 3.2 / Figure 5): for every CDN edge site, the best
  carbon-intensity reduction available at another site within a search radius
  D, summarised as a CDF, plus the one-way latency distribution of pairs within
  the radius.

All pairwise work is vectorised over the site axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.carbon.traces import TraceSet
from repro.datasets.akamai import CDNFootprint
from repro.datasets.cities import CityCatalog, default_city_catalog
from repro.datasets.regions import MesoscaleRegion
from repro.network.geo import bounding_box, pairwise_distances_km
from repro.network.latency import LatencyModel


@dataclass
class RegionSnapshot:
    """One-hour spatial snapshot of a mesoscale region (Figure 2)."""

    region: str
    hour: int
    intensities: dict[str, float]      # city -> intensity
    zone_of_city: dict[str, str]
    width_km: float
    height_km: float

    @property
    def spread_ratio(self) -> float:
        """Max/min intensity ratio across the region's zones at this hour."""
        values = np.array(list(self.intensities.values()))
        lo = values.min()
        return float(values.max() / lo) if lo > 0 else float("inf")


def region_snapshot(region: MesoscaleRegion, traces: TraceSet, hour: int,
                    catalog: CityCatalog | None = None) -> RegionSnapshot:
    """Per-city carbon intensity of a region at one hour, plus its bounding box."""
    catalog = catalog or default_city_catalog()
    cities = region.cities(catalog)
    intensities = {c.name: traces.get(c.zone_id).at(hour) for c in cities}
    box = bounding_box(np.array([[c.lat, c.lon] for c in cities]))
    return RegionSnapshot(
        region=region.name,
        hour=hour,
        intensities=intensities,
        zone_of_city={c.name: c.zone_id for c in cities},
        width_km=box["width_km"],
        height_km=box["height_km"],
    )


def yearly_region_stats(region: MesoscaleRegion, traces: TraceSet,
                        catalog: CityCatalog | None = None) -> dict[str, object]:
    """Yearly mean intensity per city of a region and the max/min ratio (Figure 3)."""
    catalog = catalog or default_city_catalog()
    cities = region.cities(catalog)
    means = {c.name: traces.get(c.zone_id).mean() for c in cities}
    values = np.array(list(means.values()))
    ratio = float(values.max() / values.min()) if values.min() > 0 else float("inf")
    return {"region": region.name, "means": means, "ratio": ratio}


def radius_savings_analysis(
    footprint: CDNFootprint,
    traces: TraceSet,
    radius_km: float,
    continents: tuple[str, ...] = ("US", "EU"),
) -> np.ndarray:
    """Best percentage carbon-intensity reduction per site within a search radius.

    For every edge site, finds the site within ``radius_km`` whose *yearly mean*
    intensity is lowest and returns the percentage reduction relative to the
    site's own zone (clipped at 0 when no greener neighbour exists). This is
    the Figure 5 statistic.
    """
    if radius_km <= 0:
        raise ValueError("radius_km must be positive")
    sites = [s for s in footprint if s.continent in continents]
    if not sites:
        raise ValueError(f"no CDN sites on continents {continents}")
    coords = np.array([[s.lat, s.lon] for s in sites])
    means = np.array([traces.get(s.zone_id).mean() for s in sites])
    distances = pairwise_distances_km(coords)

    within = distances <= radius_km
    np.fill_diagonal(within, False)
    # Best (lowest) neighbouring mean intensity per site; +inf when no neighbour.
    neighbor_means = np.where(within, means[None, :], np.inf)
    best_neighbor = neighbor_means.min(axis=1)
    savings = np.zeros(len(sites))
    has_neighbor = np.isfinite(best_neighbor)
    positive = has_neighbor & (means > 0)
    savings[positive] = np.clip(
        (means[positive] - best_neighbor[positive]) / means[positive] * 100.0, 0.0, None)
    return savings


def radius_latency_analysis(
    footprint: CDNFootprint,
    radius_km: float,
    continents: tuple[str, ...] = ("US", "EU"),
    model: LatencyModel | None = None,
) -> np.ndarray:
    """One-way latencies (ms) of all site pairs within a search radius (Figure 5d)."""
    if radius_km <= 0:
        raise ValueError("radius_km must be positive")
    model = model or LatencyModel()
    sites = [s for s in footprint if s.continent in continents]
    coords = np.array([[s.lat, s.lon] for s in sites])
    distances = pairwise_distances_km(coords)
    iu = np.triu_indices(len(sites), k=1)
    pair_distances = distances[iu]
    selected = pair_distances[(pair_distances > 0) & (pair_distances <= radius_km)]
    # Mid-range inflation: the radius analysis does not know country borders,
    # so it uses the average of intra- and inter-border mid-points.
    mid_inflation = 0.5 * (np.mean(model.intra_inflation) + np.mean(model.inter_inflation))
    return model.base_ms + selected / 200.0 * mid_inflation


def savings_cdf(savings: np.ndarray, thresholds: tuple[float, ...] = (20.0, 40.0)
                ) -> dict[str, float]:
    """CDF summary of a savings distribution (Figure 5 annotations).

    Returns, per threshold t, the fraction of sites with savings below t
    (``below_t``) and above t (``above_t``), plus the median.
    """
    savings = np.asarray(savings, dtype=float)
    if savings.size == 0:
        raise ValueError("savings array must not be empty")
    out: dict[str, float] = {"median": float(np.median(savings))}
    for t in thresholds:
        out[f"below_{int(t)}"] = float(np.mean(savings < t))
        out[f"above_{int(t)}"] = float(np.mean(savings > t))
    return out
