"""Carbon-savings computation and policy comparisons.

The paper reports every result relative to the Latency-aware baseline
(Section 6.1.4): carbon savings in percent, round-trip latency increase in
milliseconds, and energy consumption. These helpers implement that comparison
for single solutions and aggregated simulation results.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.solution import PlacementSolution


def carbon_savings_pct(baseline_carbon_g: float, policy_carbon_g: float) -> float:
    """Percentage carbon savings of a policy relative to a baseline."""
    if baseline_carbon_g < 0 or policy_carbon_g < 0:
        raise ValueError("carbon totals must be non-negative")
    if baseline_carbon_g == 0:
        return 0.0
    return (baseline_carbon_g - policy_carbon_g) / baseline_carbon_g * 100.0


@dataclass(frozen=True)
class PolicyComparison:
    """Comparison of one policy against the Latency-aware baseline."""

    policy: str
    baseline: str
    carbon_savings_pct: float
    latency_increase_ms: float      # round-trip increase
    energy_ratio: float             # policy energy / baseline energy
    baseline_carbon_g: float
    policy_carbon_g: float

    def as_row(self) -> dict[str, float | str]:
        """Row form used by experiment tables."""
        return {
            "policy": self.policy,
            "carbon_savings_pct": round(self.carbon_savings_pct, 2),
            "latency_increase_ms": round(self.latency_increase_ms, 2),
            "energy_ratio": round(self.energy_ratio, 3),
        }


def compare_solutions(baseline: PlacementSolution, policy: PlacementSolution
                      ) -> PolicyComparison:
    """Compare a policy's solution against the baseline solution of the same problem."""
    if baseline.problem is not policy.problem:
        # Not strictly required, but the comparison only makes sense over the
        # same batch of applications.
        base_ids = {a.app_id for a in baseline.problem.applications}
        pol_ids = {a.app_id for a in policy.problem.applications}
        if base_ids != pol_ids:
            raise ValueError("solutions compare different application batches")
    base_carbon = baseline.total_carbon_g()
    pol_carbon = policy.total_carbon_g()
    base_energy = baseline.total_energy_j()
    pol_energy = policy.total_energy_j()
    # Round-trip increase = 2x the one-way mean difference.
    latency_increase = 2.0 * (policy.mean_latency_ms() - baseline.mean_latency_ms())
    return PolicyComparison(
        policy=policy.policy_name or "policy",
        baseline=baseline.policy_name or "baseline",
        carbon_savings_pct=carbon_savings_pct(base_carbon, pol_carbon),
        latency_increase_ms=latency_increase,
        energy_ratio=(pol_energy / base_energy) if base_energy > 0 else 1.0,
        baseline_carbon_g=base_carbon,
        policy_carbon_g=pol_carbon,
    )
