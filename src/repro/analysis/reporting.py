"""Plain-text rendering of experiment tables, series, and CDFs.

The benchmark harness prints the rows/series each paper figure or table
reports; these helpers keep that formatting consistent and easy to diff.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def format_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Render a list of dict rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(rows[0].keys())
    rendered = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for r in rendered:
        lines.append(" | ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(series: Mapping[str, Sequence[float]], title: str = "",
                  precision: int = 2) -> str:
    """Render named numeric series (one per line)."""
    lines = [title] if title else []
    for name, values in series.items():
        rendered = ", ".join(f"{float(v):.{precision}f}" for v in values)
        lines.append(f"{name}: [{rendered}]")
    return "\n".join(lines)


def format_cdf(values: Sequence[float], title: str = "",
               percentiles: Sequence[float] = (10, 25, 50, 75, 90)) -> str:
    """Render a distribution as selected percentiles."""
    arr = np.asarray(list(values), dtype=float)
    lines = [title] if title else []
    if arr.size == 0:
        lines.append("(empty)")
        return "\n".join(lines)
    for q in percentiles:
        lines.append(f"p{int(q):02d}: {np.percentile(arr, q):.2f}")
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
