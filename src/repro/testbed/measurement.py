"""Emulated energy measurement (the RAPL stand-in used by the testbed).

:class:`EmulatedEnergyMeter` integrates a server's energy over an experiment by
combining the per-request dynamic energy of the workloads it serves with the
server's base power, exactly the split RAPL + the DCGM exporter give the
paper's power monitoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.server import EdgeServer


@dataclass
class EmulatedEnergyMeter:
    """Accumulates base and per-request dynamic energy for one server."""

    server: EdgeServer
    base_energy_j: float = 0.0
    dynamic_energy_j: float = 0.0
    request_count: int = 0
    _per_app_dynamic_j: dict[str, float] = field(default_factory=dict)

    def record_idle_interval(self, duration_s: float) -> None:
        """Account the server's base power over an interval it is powered on."""
        if duration_s < 0:
            raise ValueError("duration_s must be non-negative")
        if self.server.is_on:
            self.base_energy_j += self.server.base_power_w * duration_s

    def record_request(self, app_id: str, energy_j: float) -> None:
        """Account one served request's dynamic energy."""
        if energy_j < 0:
            raise ValueError("energy_j must be non-negative")
        self.dynamic_energy_j += energy_j
        self.request_count += 1
        self._per_app_dynamic_j[app_id] = self._per_app_dynamic_j.get(app_id, 0.0) + energy_j

    @property
    def total_energy_j(self) -> float:
        """Base plus dynamic energy, joules."""
        return self.base_energy_j + self.dynamic_energy_j

    def app_energy_j(self, app_id: str) -> float:
        """Dynamic energy attributed to one application, joules."""
        return self._per_app_dynamic_j.get(app_id, 0.0)

    def reset(self) -> None:
        """Clear all accumulated measurements."""
        self.base_energy_j = 0.0
        self.dynamic_energy_j = 0.0
        self.request_count = 0
        self._per_app_dynamic_j.clear()
