"""End-to-end emulation of the paper's mesoscale testbed experiments.

:func:`run_testbed_experiment` reproduces the Section-6.2 methodology: one edge
data center per region city, one application sourced at every city, a placement
decision by the policy under test, then a 24-hour replay in which each
application's request load is served at its hosting site — accumulating dynamic
energy (per-request profile energy), base power, zone carbon intensity, and
per-request response times (network round trip + inference time + jitter).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.carbon.service import CarbonIntensityService
from repro.carbon.synthetic import SyntheticTraceGenerator
from repro.cluster.fleet import EdgeFleet, build_regional_fleet
from repro.core.policies.base import PlacementPolicy
from repro.core.problem import PlacementProblem
from repro.core.solution import PlacementSolution
from repro.core.validation import validate_solution
from repro.datasets.cities import CityCatalog, default_city_catalog
from repro.datasets.electricity_maps import ZoneCatalog, default_zone_catalog
from repro.datasets.regions import MesoscaleRegion
from repro.network.latency import LatencyMatrix, build_latency_matrix
from repro.network.traces import generate_latency_trace
from repro.testbed.measurement import EmulatedEnergyMeter
from repro.utils.rng import substream
from repro.utils.units import joules_to_kwh
from repro.workloads.application import Application
from repro.workloads.requests import generate_request_load


@dataclass
class EmulatedTestbed:
    """A wired-up mesoscale testbed: fleet + latency + carbon service."""

    region: MesoscaleRegion
    fleet: EdgeFleet
    latency: LatencyMatrix
    carbon: CarbonIntensityService
    seed: int = 0

    def sites(self) -> list[str]:
        """Site (city) names of the testbed."""
        return self.fleet.sites()


@dataclass
class TestbedRunResult:
    """Metrics of one 24-hour testbed run under one policy."""

    region: str
    policy: str
    workload: str
    solution: PlacementSolution
    #: app_id -> (hours,) emission series in grams (dynamic + base share).
    hourly_emissions_g: dict[str, np.ndarray]
    #: source site -> per-request end-to-end response times (ms).
    response_times_ms: dict[str, np.ndarray]
    #: site hosting each application.
    hosting_site: dict[str, str]
    total_energy_j: float
    hours: int

    @property
    def total_emissions_g(self) -> float:
        """Total emissions across applications over the run, grams."""
        return float(sum(series.sum() for series in self.hourly_emissions_g.values()))

    def mean_response_ms(self, site: str | None = None) -> float:
        """Mean end-to-end response time (optionally for one source site)."""
        if site is not None:
            return float(self.response_times_ms[site].mean())
        all_samples = np.concatenate(list(self.response_times_ms.values()))
        return float(all_samples.mean())

    def emissions_by_app(self) -> dict[str, float]:
        """Total emissions per application, grams."""
        return {a: float(s.sum()) for a, s in self.hourly_emissions_g.items()}


def build_testbed(region: MesoscaleRegion, seed: int = 0, n_hours: int = 8760,
                  city_catalog: CityCatalog | None = None,
                  zone_catalog: ZoneCatalog | None = None,
                  servers_per_site: int = 1) -> EmulatedTestbed:
    """Construct the emulated testbed for one mesoscale region."""
    city_catalog = city_catalog or default_city_catalog()
    zone_catalog = zone_catalog or default_zone_catalog()
    cities = region.cities(city_catalog)
    names = [c.name for c in cities]
    latency = build_latency_matrix(
        names, city_catalog.coordinates_array(names),
        countries=[c.state or c.country for c in cities])
    fleet = build_regional_fleet(region, servers_per_site=servers_per_site,
                                 catalog=city_catalog)
    generator = SyntheticTraceGenerator(seed=seed, n_hours=n_hours)
    traces = generator.generate_set([zone_catalog.get(z) for z in region.zone_ids(city_catalog)])
    carbon = CarbonIntensityService(traces=traces)
    return EmulatedTestbed(region=region, fleet=fleet, latency=latency, carbon=carbon, seed=seed)


def run_testbed_experiment(
    testbed: EmulatedTestbed,
    policy: PlacementPolicy,
    workload: str = "Sci",
    hours: int = 24,
    start_hour: int = 0,
    request_rate_rps: float = 10.0,
    latency_slo_ms: float = 20.0,
    requests_sampled_per_site: int = 200,
    include_base_power: bool = False,
) -> TestbedRunResult:
    """Run one 24-hour (by default) testbed experiment under one policy.

    One application is sourced at every region city (as in the paper's regional
    deployment); the policy places the batch once at ``start_hour``, then the
    run replays ``hours`` hours of request load and carbon intensity.

    Parameters
    ----------
    include_base_power:
        Attribute a share of the hosting server's base power to each
        application (the paper's Figure 8 reports application-level emissions,
        which are dominated by dynamic energy; the aggregate Figure 10 numbers
        include base power when servers are activated by the placement).
    """
    if hours <= 0:
        raise ValueError("hours must be positive")
    sites = testbed.sites()
    testbed.fleet.reset_allocations()
    for server in testbed.fleet.servers():
        server.power_on()

    applications = [
        Application(app_id=f"{workload}-{site.replace(' ', '_')}", workload=workload,
                    source_site=site, latency_slo_ms=latency_slo_ms,
                    request_rate_rps=request_rate_rps, duration_hours=float(hours))
        for site in sites
    ]
    problem = PlacementProblem.build(
        applications=applications, servers=testbed.fleet.servers(),
        latency=testbed.latency, carbon=testbed.carbon, hour=start_hour,
        horizon_hours=float(hours))
    solution = policy.timed_place(problem)
    validate_solution(solution, strict=True)

    meters = {s.server_id: EmulatedEnergyMeter(server=s) for s in testbed.fleet.servers()}
    hosting_site: dict[str, str] = {}
    hourly_emissions: dict[str, np.ndarray] = {}
    response_times: dict[str, np.ndarray] = {}

    for app in applications:
        if app.app_id not in solution.placements:
            # Unplaced applications contribute nothing (should not happen in
            # the regional setup, where every site is within the SLO).
            hourly_emissions[app.app_id] = np.zeros(hours)
            response_times[app.source_site] = np.array([0.0])
            continue
        j = solution.placements[app.app_id]
        server = problem.servers[j]
        hosting_site[app.app_id] = server.site
        profile = app.profile_on(server)

        # --- energy + carbon accounting, hour by hour -----------------------
        load = generate_request_load(app.app_id, request_rate_rps, hours * 3600.0,
                                     seed=testbed.seed)
        hourly_requests = load.hourly_counts()[:hours]
        dynamic_energy_per_hour = hourly_requests * profile.energy_per_request_j
        intensities = testbed.carbon.trace(server.zone_id).window(start_hour, hours)
        emissions = joules_to_kwh(dynamic_energy_per_hour.astype(float)) * intensities
        if include_base_power:
            # Split the hosting server's base power evenly across its apps.
            apps_on_server = max(1, sum(1 for jj in solution.placements.values() if jj == j))
            base_share_j = server.base_power_w * 3600.0 / apps_on_server
            emissions = emissions + joules_to_kwh(base_share_j) * intensities
        hourly_emissions[app.app_id] = emissions
        meter = meters[server.server_id]
        for _hour_index in range(hours):
            meter.record_idle_interval(3600.0 / max(1, len(solution.placements)))
        meter.dynamic_energy_j += float(dynamic_energy_per_hour.sum())
        meter.request_count += int(hourly_requests.sum())

        # --- response times ---------------------------------------------------
        one_way = testbed.latency.one_way_ms(app.source_site, server.site)
        trace = generate_latency_trace(
            (app.source_site, server.site), one_way, requests_sampled_per_site,
            seed=testbed.seed)
        rng = substream(testbed.seed, "inference-jitter", app.app_id)
        inference = profile.latency_ms * rng.uniform(0.9, 1.15, size=len(trace))
        response_times[app.source_site] = 2.0 * trace.samples_ms + inference

    total_energy = sum(m.total_energy_j for m in meters.values())
    return TestbedRunResult(
        region=testbed.region.name,
        policy=policy.name,
        workload=workload,
        solution=solution,
        hourly_emissions_g=hourly_emissions,
        response_times_ms=response_times,
        hosting_site=hosting_site,
        total_energy_j=float(total_energy),
        hours=hours,
    )
