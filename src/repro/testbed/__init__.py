"""Emulated mesoscale edge testbed (the Dell R630 / tc / Locust stand-in).

The paper's testbed (Section 6.1.2) runs five edge data centers — one per city
of a mesoscale region — each a Dell R630 with an NVIDIA A2, with Linux ``tc``
emulating inter-site latency, Locust generating request load, and RAPL/DCGM
measuring power. This package emulates that setup end-to-end in-process: the
same fleet construction, a latency injector derived from the network model,
request-driven energy/carbon accounting through the telemetry monitors, and
per-request response times. The Figure 8–10 experiments run on top of it.
"""

from repro.testbed.emulation import (
    EmulatedTestbed,
    TestbedRunResult,
    build_testbed,
    run_testbed_experiment,
)
from repro.testbed.measurement import EmulatedEnergyMeter

__all__ = [
    "EmulatedTestbed",
    "TestbedRunResult",
    "build_testbed",
    "run_testbed_experiment",
    "EmulatedEnergyMeter",
]
