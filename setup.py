"""Legacy setup shim so `pip install -e .` works without the `wheel` package.

All project metadata lives in pyproject.toml; this file only enables the
legacy (setup.py develop) editable-install path in offline environments.
"""
from setuptools import setup

setup()
