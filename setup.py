"""Packaging metadata for the CarbonEdge reproduction.

The project is a pure-python package under ``src/`` with numpy/scipy as its
only runtime dependencies (the MILP layer uses scipy's HiGHS ``linprog``
backend instead of OR-Tools so everything works offline). ``pip install -e .``
installs the ``repro`` package plus the ``carbon-edge-quickstart`` console
command demonstrated in the README.
"""

from pathlib import Path

from setuptools import find_packages, setup

_README = Path(__file__).parent / "README.md"

setup(
    name="carbonedge-repro",
    version="0.3.0",
    description=(
        "Reproduction of CarbonEdge: carbon-aware application placement across "
        "edge data centers, with a pluggable solver-backend registry and a "
        "declarative experiment registry driven by a sharded parallel runner"
    ),
    long_description=_README.read_text(encoding="utf-8") if _README.exists() else "",
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.9",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
        # The anytime exact solver tier (cpsat / milp backends). Optional:
        # without it those backends degrade to the heuristic with a
        # structured OrToolsUnavailableWarning.
        "exact": ["ortools>=9.5"],
    },
    entry_points={
        "console_scripts": [
            "carbon-edge = repro.cli:carbon_edge_main",
            "carbon-edge-quickstart = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering",
        "Topic :: System :: Distributed Computing",
    ],
)
